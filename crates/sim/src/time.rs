//! Simulation time — re-exported from the generic `wlan-des` kernel.
//!
//! [`SimTime`] and [`SimDuration`] (integer-nanosecond time, no float
//! drift) moved to [`wlan_des::time`] together with the rest of the
//! discrete-event machinery; this module re-exports them so every
//! `wlan_sim::time::...` path — and the serialized form in golden traces
//! and campaign outputs — stays exactly as it was.

pub use wlan_des::time::*;
