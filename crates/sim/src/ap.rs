//! The access-point side of the MAC: reception outcomes and the controller hook.
//!
//! Both of the paper's algorithms run at the AP: they observe the stream of
//! successfully received frames (Algorithm 1 / Algorithm 2, lines 3–14), update
//! their control variable once per `UPDATE_PERIOD`, and piggy-back the current
//! value on every ACK. The simulator exposes exactly that interface through
//! [`ApAlgorithm`]; protocol implementations live in the `wlan-core` crate.

use crate::control::ControlPayload;
use crate::time::SimTime;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use wlan_des::snapshot::{SnapshotError, StateReader, StateWriter};

/// One completed controller measurement segment, as reported through
/// [`ApAlgorithm::telemetry`]: the stochastic-approximation iterate and the
/// quantities that drove it. Purely observational — capturing epochs draws no
/// RNG and schedules nothing, so an instrumented run is identical to an
/// uninstrumented one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlEpoch {
    /// The optimiser's iteration counter `k` after this segment was folded in.
    pub iteration: u64,
    /// Estimate of the optimal control variable (`pval`), in control-variable
    /// units (a probability, even for log-domain controllers).
    pub estimate: f64,
    /// The probe value advertised for the *next* segment.
    pub probe: f64,
    /// Step gain `a_k` in effect after the segment.
    pub gain: f64,
    /// Perturbation width `b_k` in effect after the segment.
    pub perturbation: f64,
    /// Mean of the observable over the segment window (throughput normalised
    /// by the controller's measurement scale).
    pub window_mean: f64,
    /// Change the update applied to the estimate, in the optimiser's working
    /// domain. `None` when the segment was the plus-side half of a
    /// finite-difference pair (no update yet — awaiting the minus side).
    pub delta: Option<f64>,
}

/// A controller running at the access point.
///
/// The simulator calls [`on_success`](ApAlgorithm::on_success) whenever a data
/// frame is decoded without collision (immediately before the ACK is scheduled),
/// [`on_collision`](ApAlgorithm::on_collision) whenever a busy period at the AP
/// ends without a decodable frame, and [`control_payload`](ApAlgorithm::control_payload)
/// when building each ACK.
pub trait ApAlgorithm: Send {
    /// A data frame from `source` carrying `payload_bits` of MAC payload was
    /// successfully received; the reception finished at `now`.
    fn on_success(&mut self, now: SimTime, source: NodeId, payload_bits: u64);

    /// A busy period at the AP ended at `now` without any decodable frame
    /// (one or more overlapping transmissions collided).
    fn on_collision(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Periodic beacon tick (the simulator's statistics tick). Gives controllers a
    /// chance to close a measurement segment even when no frame has been received
    /// for a while — the paper's suggested beacon-frame variant of wTOP-CSMA.
    fn on_beacon(&mut self, now: SimTime) {
        let _ = now;
    }

    /// The control payload to embed in the ACK transmitted at `now`.
    fn control_payload(&mut self, now: SimTime) -> ControlPayload;

    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Time series of the controller's scalar control variable (`p` for wTOP-CSMA,
    /// `p0` for TORA-CSMA). Used to reproduce Figs. 9 and 11.
    ///
    /// Returns a borrowed slice: the trace is read once per scenario (after
    /// the run) but can hold thousands of entries, and the previous
    /// clone-per-call signature showed up as avoidable allocation in the
    /// large-N campaign profiles.
    fn control_trace(&self) -> &[(SimTime, f64)] {
        &[]
    }

    /// Per-update-epoch telemetry of the controller's stochastic-
    /// approximation iterate (see [`ControlEpoch`]), timestamped with the
    /// segment-close instant. Empty for controllers without one (the
    /// default). Surfaced on scenario results only when telemetry is
    /// requested, so the default serialised form is unchanged.
    fn telemetry(&self) -> &[(SimTime, ControlEpoch)] {
        &[]
    }

    /// Append the controller's *mutable* state to a checkpoint. Build-time
    /// configuration is reconstructed from the scenario; the default writes
    /// nothing, which is correct only for stateless controllers — an
    /// adaptive controller must override both this and
    /// [`load_state`](Self::load_state) symmetrically or resumed runs will
    /// diverge from straight-through ones.
    fn save_state(&self, writer: &mut StateWriter) {
        let _ = writer;
    }

    /// Restore state written by [`save_state`](Self::save_state) into a
    /// freshly built controller.
    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let _ = reader;
        Ok(())
    }
}

/// The closed set of AP-side controllers the simulator dispatches statically.
///
/// The counterpart of [`Policy`](crate::backoff::Policy) for the access point:
/// the simulator owns a `Controller` by value instead of a
/// `Box<dyn ApAlgorithm>`. The stochastic-approximation controllers (wTOP-CSMA,
/// TORA-CSMA) live in the higher-level `wlan-core` crate and plug in through
/// [`Controller::Custom`]; the no-op [`NullController`] of every static scheme
/// — the common case in large sweeps — is dispatched without a vtable.
pub enum Controller {
    /// No AP-side control (standard 802.11, IdleSense, static policies).
    Null(NullController),
    /// Escape hatch: any other [`ApAlgorithm`], dispatched virtually.
    Custom(Box<dyn ApAlgorithm>),
}

impl Controller {
    /// Wrap an out-of-crate controller in the virtual-dispatch escape hatch.
    pub fn custom(ap: Box<dyn ApAlgorithm>) -> Self {
        Controller::Custom(ap)
    }
}

impl ApAlgorithm for Controller {
    fn on_success(&mut self, now: SimTime, source: NodeId, payload_bits: u64) {
        match self {
            Controller::Null(c) => c.on_success(now, source, payload_bits),
            Controller::Custom(c) => c.on_success(now, source, payload_bits),
        }
    }

    fn on_collision(&mut self, now: SimTime) {
        match self {
            Controller::Null(c) => c.on_collision(now),
            Controller::Custom(c) => c.on_collision(now),
        }
    }

    fn on_beacon(&mut self, now: SimTime) {
        match self {
            Controller::Null(c) => c.on_beacon(now),
            Controller::Custom(c) => c.on_beacon(now),
        }
    }

    fn control_payload(&mut self, now: SimTime) -> ControlPayload {
        match self {
            Controller::Null(c) => c.control_payload(now),
            Controller::Custom(c) => c.control_payload(now),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Controller::Null(c) => c.name(),
            Controller::Custom(c) => c.name(),
        }
    }

    fn control_trace(&self) -> &[(SimTime, f64)] {
        match self {
            Controller::Null(c) => c.control_trace(),
            Controller::Custom(c) => c.control_trace(),
        }
    }

    fn telemetry(&self) -> &[(SimTime, ControlEpoch)] {
        match self {
            Controller::Null(c) => c.telemetry(),
            Controller::Custom(c) => c.telemetry(),
        }
    }

    fn save_state(&self, writer: &mut StateWriter) {
        match self {
            Controller::Null(c) => c.save_state(writer),
            Controller::Custom(c) => c.save_state(writer),
        }
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        match self {
            Controller::Null(c) => c.load_state(reader),
            Controller::Custom(c) => c.load_state(reader),
        }
    }
}

impl From<NullController> for Controller {
    fn from(c: NullController) -> Self {
        Controller::Null(c)
    }
}

impl From<Box<dyn ApAlgorithm>> for Controller {
    fn from(c: Box<dyn ApAlgorithm>) -> Self {
        Controller::Custom(c)
    }
}

/// The "controller" of standard IEEE 802.11 and of all static policies: does
/// nothing and advertises no control information.
#[derive(Debug, Default, Clone)]
pub struct NullController {
    successes: u64,
    collisions: u64,
}

impl NullController {
    /// Create a no-op controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of successful receptions observed.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of collision events observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

impl ApAlgorithm for NullController {
    fn on_success(&mut self, _now: SimTime, _source: NodeId, _payload_bits: u64) {
        self.successes += 1;
    }

    fn on_collision(&mut self, _now: SimTime) {
        self.collisions += 1;
    }

    fn control_payload(&mut self, _now: SimTime) -> ControlPayload {
        ControlPayload::None
    }

    fn name(&self) -> &'static str {
        "null"
    }

    fn save_state(&self, writer: &mut StateWriter) {
        writer.put_u64(self.successes);
        writer.put_u64(self.collisions);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.successes = reader.get_u64()?;
        self.collisions = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_enum_forwards_to_variants() {
        let mut c: Controller = NullController::new().into();
        c.on_success(SimTime::from_micros(10), 0, 8000);
        c.on_collision(SimTime::from_micros(20));
        c.on_beacon(SimTime::from_micros(30));
        assert!(c.control_payload(SimTime::from_micros(40)).is_none());
        assert_eq!(c.name(), "null");
        assert!(c.control_trace().is_empty());
        match &c {
            Controller::Null(n) => {
                assert_eq!(n.successes(), 1);
                assert_eq!(n.collisions(), 1);
            }
            Controller::Custom(_) => panic!("expected the Null variant"),
        }

        let custom = Controller::custom(Box::new(NullController::new()));
        assert_eq!(custom.name(), "null");
    }

    #[test]
    fn null_controller_counts_and_stays_silent() {
        let mut c = NullController::new();
        c.on_success(SimTime::from_micros(10), 3, 8000);
        c.on_success(SimTime::from_micros(20), 4, 8000);
        c.on_collision(SimTime::from_micros(30));
        assert_eq!(c.successes(), 2);
        assert_eq!(c.collisions(), 1);
        assert!(c.control_payload(SimTime::from_micros(40)).is_none());
        assert!(c.control_trace().is_empty());
        assert_eq!(c.name(), "null");
    }
}
