//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! vendored `serde` stand-in's `Value` data model.
//!
//! The emitted text is ordinary JSON in serde's default externally-tagged
//! encoding, so files written by this crate are interchangeable with files
//! written by the real serde_json for the types in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Error;
use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 is the shortest representation that round-trips;
                // make sure integral floats keep a `.0` so they parse back as
                // floats rather than integers.
                let text = v.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Match serde_json's lossy behaviour for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| {
                            Error::custom(format!("invalid \\u escape at offset {}", self.pos))
                        })?);
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "invalid escape {other:?} at offset {}",
                            self.pos
                        )))
                    }
                },
                other => {
                    return Err(Error::custom(format!(
                        "unterminated string (got {other:?}) at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b) if b.is_ascii_hexdigit() => (b as char).to_digit(16).unwrap(),
                other => {
                    return Err(Error::custom(format!(
                        "invalid hex digit {other:?} at offset {}",
                        self.pos
                    )))
                }
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64).unwrap()).unwrap(), 1.5);
        assert_eq!(from_str::<f64>(&to_string(&2.0f64).unwrap()).unwrap(), 2.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>(&to_string("he\"llo\n").unwrap()).unwrap(),
            "he\"llo\n"
        );
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.5]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""aA\né""#).unwrap();
        assert_eq!(s, "aA\né");
        let s: String = from_str(r#""😀""#).unwrap();
        assert_eq!(s, "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("[").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
