//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access to a cargo
//! registry, so the workspace vendors a minimal, API-compatible subset of
//! `rand` 0.8: the [`RngCore`] / [`SeedableRng`] traits, the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`, and uniform sampling over the
//! standard range types. The surface is exactly what the simulator, the
//! stochastic-approximation library and the tests use; swapping back to the
//! real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance seeded from a single `u64`.
    ///
    /// The seed bytes are derived with the SplitMix64 generator, as the real
    /// `rand` crate does, so distinct integers give well-separated states.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled from the "standard" distribution of [`Rng::gen`]:
/// uniform over the whole domain for integers and `bool`, uniform over
/// `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types over which [`SampleRange`] does uniform range sampling.
pub trait UniformInt: Copy {
    /// Widening conversion to `u64`.
    fn to_u64(self) -> u64;
    /// Narrowing conversion from `u64` (the value is always in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 0 {
        return 0;
    }
    // Rejection sampling over the largest multiple of `span`, so the result is
    // exactly uniform (a bare modulo would bias small spans).
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range types from which [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + uniform_u64(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_u64(rng, hi - lo + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive upper bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The subset of `rand::prelude` this workspace uses.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn dyn_rng_core_has_extension_methods() {
        let mut rng = Counter(7);
        let dynref: &mut dyn RngCore = &mut rng;
        let v: u64 = dynref.gen_range(0..10);
        assert!(v < 10);
        let _: f64 = dynref.gen();
        let _ = dynref.gen_bool(0.5);
    }
}
