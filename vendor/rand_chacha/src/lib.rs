//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`]: a genuine ChaCha stream cipher with 8
//! rounds used as a deterministic, seedable random number generator.
//!
//! The keystream is the real ChaCha8 keystream (RFC 8439 block function with
//! the round count lowered to 8), so the generator has the same statistical
//! quality as the crate it replaces. The exact output sequence is *not*
//! guaranteed to be word-for-word identical to upstream `rand_chacha` (word
//! extraction order is an implementation detail); everything in this workspace
//! only relies on determinism for a fixed seed, which this provides.
//!
//! Refills are **batched**: each refill runs the block function for four
//! consecutive counter values into one buffer. The four
//! block computations are mutually independent, so the compiler can
//! interleave their quarter-round chains (instruction-level parallelism the
//! serial one-block loop cannot expose), and the per-refill loop overhead is
//! amortised over four times as many output words. The keystream itself is
//! unchanged word for word — blocks are generated in counter order and
//! consumed in order — which the `batched_refill_matches_single_block` test
//! pins against an independent one-block-at-a-time implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 8;
/// Keystream blocks generated per refill.
const BATCH_BLOCKS: usize = 4;
const BUF_WORDS: usize = BLOCK_WORDS * BATCH_BLOCKS;

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, block counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current batch of keystream blocks, in counter order.
    block: [u32; BUF_WORDS],
    /// Next unconsumed word of `block`; `BUF_WORDS` forces a refill.
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Run the ChaCha8 block function on `input`, writing the keystream block to
/// `out`.
#[inline]
fn block_fn(input: &[u32; BLOCK_WORDS], out: &mut [u32]) {
    let mut working = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (out, (w, s)) in out.iter_mut().zip(working.iter().zip(input.iter())) {
        *out = w.wrapping_add(*s);
    }
}

/// Advance the 64-bit block counter held in words 12..14 of `state`.
#[inline]
fn bump_counter(state: &mut [u32; BLOCK_WORDS]) {
    let (lo, carry) = state[12].overflowing_add(1);
    state[12] = lo;
    if carry {
        state[13] = state[13].wrapping_add(1);
    }
}

impl ChaCha8Rng {
    /// Number of `u32` words in the cipher input state.
    pub const STATE_WORDS: usize = BLOCK_WORDS;
    /// Number of `u32` words in the buffered keystream batch.
    pub const BUFFER_WORDS: usize = BUF_WORDS;

    /// Capture the complete generator state — cipher input, buffered
    /// keystream batch and consumption index — as plain words.
    ///
    /// Together with [`ChaCha8Rng::from_state`] this allows a generator to be
    /// serialized and restored at its exact stream position, which the
    /// simulation-checkpoint layer relies on: a restored generator must
    /// produce the identical word sequence the original would have.
    pub fn state(&self) -> ([u32; 16], [u32; 64], usize) {
        (self.state, self.block, self.index)
    }

    /// Rebuild a generator from a state captured by [`ChaCha8Rng::state`].
    ///
    /// `index` is clamped to the buffer length; any value at or beyond it
    /// simply forces a refill on the next draw, exactly like a fresh seed.
    pub fn from_state(state: [u32; 16], block: [u32; 64], index: usize) -> Self {
        ChaCha8Rng {
            state,
            block,
            index: index.min(BUF_WORDS),
        }
    }

    fn refill(&mut self) {
        // Generate BATCH_BLOCKS consecutive blocks into the buffer. The
        // intermediate counter states are tiny copies; the block mixes are
        // independent and can execute in parallel at the instruction level.
        let mut inputs = [self.state; BATCH_BLOCKS];
        for i in 1..BATCH_BLOCKS {
            inputs[i] = inputs[i - 1];
            bump_counter(&mut inputs[i]);
        }
        for (i, input) in inputs.iter().enumerate() {
            block_fn(
                input,
                &mut self.block[i * BLOCK_WORDS..(i + 1) * BLOCK_WORDS],
            );
        }
        self.state = inputs[BATCH_BLOCKS - 1];
        bump_counter(&mut self.state);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Words 12..16: block counter and nonce, all zero at the stream start.
        ChaCha8Rng {
            state,
            block: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn batched_refill_matches_single_block() {
        // An independent one-block-at-a-time generator: the pre-batching
        // implementation, kept as the executable specification of the
        // keystream. The batched refill must produce the identical word
        // sequence (this is what keeps every simulator RNG stream — and the
        // golden traces that pin them — bit-identical across the change).
        struct Scalar {
            state: [u32; BLOCK_WORDS],
            block: [u32; BLOCK_WORDS],
            index: usize,
        }
        impl Scalar {
            fn next_u32(&mut self) -> u32 {
                if self.index >= BLOCK_WORDS {
                    block_fn(&self.state, &mut self.block);
                    bump_counter(&mut self.state);
                    self.index = 0;
                }
                let w = self.block[self.index];
                self.index += 1;
                w
            }
        }
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let mut batched = ChaCha8Rng::seed_from_u64(seed);
            let mut scalar = Scalar {
                state: batched.state,
                block: [0; BLOCK_WORDS],
                index: BLOCK_WORDS,
            };
            for i in 0..BUF_WORDS * 5 + 3 {
                assert_eq!(
                    batched.next_u32(),
                    scalar.next_u32(),
                    "seed {seed} word {i}"
                );
            }
        }
    }

    #[test]
    fn state_round_trip_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..53 {
            a.next_u32();
        }
        let (state, block, index) = a.state();
        let mut b = ChaCha8Rng::from_state(state, block, index);
        for _ in 0..BUF_WORDS * 3 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect_lo = b.next_u64().to_le_bytes();
        let expect_hi = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &expect_lo);
        assert_eq!(&buf[8..], &expect_hi);
    }
}
