//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions whose arguments are drawn from
//! strategies (`x in 0.0..1.0`), range and `any::<T>()` strategies, the
//! [`collection::vec`] combinator, [`ProptestConfig::with_cases`] and the
//! `prop_assert!` family.
//!
//! Values are drawn from a deterministic ChaCha8 generator seeded per test
//! run, so failures are reproducible. Unlike real proptest there is no
//! shrinking: a failing case panics with the ordinary `assert!` message, which
//! (together with determinism) is enough to debug the invariants tested here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The RNG all strategies draw from.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by one generated test function.
#[doc(hidden)]
pub fn new_test_rng(test_name: &str) -> TestRng {
    // Derive the seed from the test name so different properties explore
    // different corners, while each stays reproducible run to run.
    let mut seed = 0xcafe_f00d_d15e_a5e5u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

/// Types with a canonical "any value" strategy, like proptest's `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::gen(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rand::Rng::gen(rng)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Tuples of strategies are themselves strategies (as in upstream proptest),
// which is what lets `collection::vec((0u64..3, 0u64..100), ..)` draw vectors
// of heterogeneous pairs.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`](self::vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rand::Rng::gen_range(rng, self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` in
/// the block becomes a `#[test]` running `body` against randomly drawn
/// arguments.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::new_test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The subset of `proptest::prelude` this workspace uses.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u64..9, f in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert_eq!(b, b);
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(any::<bool>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
