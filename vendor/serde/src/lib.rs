//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! self-contained serialization framework with the same *usage* surface as
//! serde: `#[derive(Serialize, Deserialize)]` on structs and enums, `T:
//! Serialize` bounds, and a `serde_json` companion with `to_string`,
//! `to_string_pretty` and `from_str`.
//!
//! Instead of serde's visitor-based zero-copy data model, everything funnels
//! through one JSON-like [`Value`] tree — dramatically simpler, and exactly
//! enough for the result dumps and round-trip tests in this repository. The
//! derive macro (in the companion `serde_derive` crate, enabled by the
//! `derive` feature) emits the same external-tagging layout serde uses by
//! default, so the produced JSON looks identical to upstream serde_json's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the common data model between [`Serialize`] and
/// [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

/// Error produced by deserialization (and by the JSON front end).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up `key` in a [`Value::Map`] body; used by derived `Deserialize`
/// impls.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) if *v >= 0 => *v as u64,
                    Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!(
                        concat!("integer out of range for ", stringify!($t), ": {}"), v)))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v).map_err(|_| {
                        Error::custom(format!("integer too large: {v}"))
                    })?,
                    Value::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!(
                        concat!("integer out of range for ", stringify!($t), ": {}"), v)))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(Error::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {LEN}, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
