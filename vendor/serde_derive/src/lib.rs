//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Parses the item's token stream by hand (the build environment has no
//! registry access, so `syn`/`quote` are unavailable) and generates
//! `serde::Serialize` / `serde::Deserialize` impls against the simplified
//! `serde::Value` data model. Supported shapes — the ones used in this
//! workspace:
//!
//! * structs with named fields,
//! * unit structs and tuple structs (including newtypes),
//! * enums whose variants are unit, tuple or struct-like.
//!
//! The generated encoding matches serde's default externally-tagged layout,
//! so the JSON written by the companion `serde_json` stand-in looks like
//! upstream's: unit variants become `"Name"`, newtype variants
//! `{"Name": value}`, struct variants `{"Name": {..fields..}}`.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! `compile_error!` instead of silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    let code = match which {
        Which::Serialize => gen_serialize(&name, &shape),
        Which::Deserialize => gen_deserialize(&name, &shape),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive internal error: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored): generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                name,
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok((
                name,
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            )),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok((name, Shape::Struct(Fields::Unit)))
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` / `(super)` / `(in path)` restriction.
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from the body of a braced struct or struct variant.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                skip_type_until_comma(&mut tokens);
            }
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
}

/// Consumes a type (everything up to the next top-level `,`), tracking
/// angle-bracket depth so commas inside generics don't terminate early.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde_derive (vendored): explicit discriminant on variant `{name}` is not supported"
            ));
        }
        match tokens.next() {
            None => {
                variants.push((name, fields));
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push((name, fields)),
            other => return Err(format!("expected `,` after variant, got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn named_fields_to_map(fields: &[String], access_prefix: &str) -> String {
    let mut code = String::from("{ let mut __m = ::std::vec::Vec::new();");
    for f in fields {
        code.push_str(&format!(
            "__m.push((::std::string::String::from({f:?}), \
             serde::Serialize::to_value(&{access_prefix}{f})));"
        ));
    }
    code.push_str("serde::Value::Map(__m) }");
    code
}

fn named_fields_from_map(ty_path: &str, fields: &[String], map_expr: &str) -> String {
    let mut code = format!("{ty_path} {{");
    for f in fields {
        code.push_str(&format!(
            "{f}: serde::Deserialize::from_value(serde::map_get({map_expr}, {f:?})?)?,"
        ));
    }
    code.push('}');
    code
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => named_fields_to_map(fields, "self."),
        Shape::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(","))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(\
                         ::std::string::String::from({vname:?})),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => serde::Value::Map(vec![(\
                             ::std::string::String::from({vname:?}), {inner})]),",
                            binds = binds.join(","),
                        ));
                    }
                    Fields::Named(fnames) => {
                        let inner = named_fields_to_map(fnames, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![(\
                             ::std::string::String::from({vname:?}), {inner})]),",
                            binds = fnames.join(","),
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => format!(
            "match __value {{\n\
                 serde::Value::Map(__m) => ::std::result::Result::Ok({ctor}),\n\
                 __other => ::std::result::Result::Err(serde::Error::custom(\
                     format!(\"expected map for struct {name}, got {{__other:?}}\"))),\n\
             }}",
            ctor = named_fields_from_map(name, fields, "__m"),
        ),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     serde::Value::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}({items})),\n\
                     __other => ::std::result::Result::Err(serde::Error::custom(\
                         format!(\"expected array of {n} for {name}, got {{__other:?}}\"))),\n\
                 }}",
                items = items.join(","),
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => match __inner {{\n\
                                 serde::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{vname}({items})),\n\
                                 __other => ::std::result::Result::Err(serde::Error::custom(\
                                     format!(\"expected array of {n} for variant {vname}, \
                                              got {{__other:?}}\"))),\n\
                             }},",
                            items = items.join(","),
                        ));
                    }
                    Fields::Named(fnames) => {
                        let ctor =
                            named_fields_from_map(&format!("{name}::{vname}"), fnames, "__m2");
                        payload_arms.push_str(&format!(
                            "{vname:?} => match __inner {{\n\
                                 serde::Value::Map(__m2) => ::std::result::Result::Ok({ctor}),\n\
                                 __other => ::std::result::Result::Err(serde::Error::custom(\
                                     format!(\"expected map for variant {vname}, \
                                              got {{__other:?}}\"))),\n\
                             }},",
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(serde::Error::custom(\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(serde::Error::custom(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(serde::Error::custom(\
                         format!(\"expected variant of {name}, got {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) \
                 -> ::std::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
}
