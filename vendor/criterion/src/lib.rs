//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the call surface the workspace's `harness = false` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple mean-of-samples wall-clock timer instead of criterion's full
//! statistical machinery. Good enough to compare runs by eye and to keep the
//! bench targets compiling and runnable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (re-export convenience,
/// mirroring `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id labelled only by the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    last_mean: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: up to `samples` timed runs within the time budget.
        let budget_per_sample = self.measurement_time / self.samples as u32;
        let mut total = Duration::ZERO;
        let mut runs = 0u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            runs += 1;
            if total >= budget_per_sample * runs.max(1) * 4 {
                // Routine is far slower than the budget; stop early.
                break;
            }
        }
        self.last_mean = total / runs.max(1);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut body: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            last_mean: Duration::ZERO,
        };
        body(&mut bencher);
        self.criterion
            .report(&format!("{}/{label}", self.name), bencher.last_mean);
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), body);
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| body(b, input));
        self
    }

    /// Finishes the group (report output happens per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point of the harness; collects and prints benchmark results.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            criterion: self,
        }
    }

    /// Benchmarks `body` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        body: F,
    ) -> &mut Self {
        let label = id.to_string();
        let mut group = self.benchmark_group("criterion");
        group.run(label, body);
        self
    }

    fn report(&mut self, label: &str, mean: Duration) {
        println!("{label:<50} time: [{mean:>12.3?}/iter]");
        self.results.push((label.to_string(), mean));
    }
}

/// Bundles benchmark functions into a single runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
