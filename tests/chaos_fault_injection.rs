//! Chaos tests: random deterministic [`FaultPlan`]s × a campaign grid.
//!
//! The determinism contract gives chaos testing something most services never
//! get: an injected fault schedule is a pure function of the plan seed, so
//! recovery can be asserted **byte for byte** —
//!
//! * transient faults (bounded `max_trips` below the retry budget, worker
//!   stalls) are absorbed completely: zero quarantined jobs and results
//!   byte-identical to the fault-free run;
//! * permanent faults quarantine *exactly* the jobs the plan predicts
//!   ([`FaultPlan::faults_every_attempt`]) with structured errors, and every
//!   other job's bytes are unaffected;
//! * cache I/O faults never quarantine anything — the cache degrades to
//!   compute-only and the results stay byte-identical to uncached runs.

use proptest::prelude::*;
use wlan_sa::core::fault::{self, FaultPlan, FaultSite};
use wlan_sa::core::{
    job_key, max_job_attempts, run_scenarios_cached_checked, run_scenarios_checked, JobError,
    Protocol, ResultCache, Scenario, ScenarioResult, TopologySpec,
};
use wlan_sa::sim::SimDuration;

/// Silence the default panic hook for injected panics (the supervised pool
/// catches them, but the hook still runs and would spam the test log); real
/// panics keep the full default report.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// A small heterogeneous campaign grid (two protocols × two seeds), cheap
/// enough to run dozens of times per proptest case.
fn grid(case_seed: u64) -> Vec<Scenario> {
    let mut jobs = Vec::new();
    for proto in [
        Protocol::StaticPPersistent { p: 0.04 },
        Protocol::Standard80211,
    ] {
        for s in 0..2u64 {
            jobs.push(
                Scenario::new(proto, TopologySpec::FullyConnected, 4)
                    .durations(SimDuration::from_millis(50), SimDuration::from_millis(150))
                    .seed(1 + case_seed * 2 + s),
            );
        }
    }
    jobs
}

fn bytes(r: &ScenarioResult) -> String {
    serde_json::to_string(r).expect("serialise result")
}

fn baseline(jobs: &[Scenario]) -> Vec<String> {
    run_scenarios_checked(jobs, 1)
        .into_iter()
        .map(|r| bytes(&r.expect("fault-free jobs succeed")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Transient faults — panics bounded below the retry budget plus worker
    /// stalls — are fully absorbed: no quarantine, bytes identical.
    #[test]
    fn transient_faults_recover_byte_identically(plan_seed in 0u64..10_000, case in 0u64..50) {
        quiet_injected_panics();
        let jobs = grid(case);
        let clean = baseline(&jobs);
        let plan = FaultPlan::builder(plan_seed)
            .site(FaultSite::JobPanic, 1.0, Some(max_job_attempts() - 1))
            .site(FaultSite::WorkerStall, 0.5, None)
            .stall_millis(1)
            .build();
        let _guard = fault::scoped(plan);
        let faulted = run_scenarios_checked(&jobs, 3);
        for (r, expect) in faulted.into_iter().zip(&clean) {
            let r = r.expect("transient faults must be retried through");
            prop_assert_eq!(&bytes(&r), expect);
        }
    }

    /// Permanent faults (unbounded random panic rate) quarantine exactly the
    /// jobs the plan predicts; every surviving job is byte-identical.
    #[test]
    fn permanent_faults_quarantine_exactly_the_predicted_jobs(
        plan_seed in 0u64..10_000,
        rate in 0.2f64..0.9,
        case in 0u64..50,
    ) {
        quiet_injected_panics();
        let jobs = grid(case);
        let clean = baseline(&jobs);
        let attempts = max_job_attempts();
        let plan = FaultPlan::builder(plan_seed)
            .site(FaultSite::JobPanic, rate, None)
            .build();
        let predicted: Vec<bool> = jobs
            .iter()
            .map(|j| plan.faults_every_attempt(FaultSite::JobPanic, &job_key(j), attempts))
            .collect();
        let _guard = fault::scoped(plan);
        let faulted = run_scenarios_checked(&jobs, 3);
        for ((r, &fail), expect) in faulted.into_iter().zip(&predicted).zip(&clean) {
            match r {
                Ok(result) => {
                    prop_assert!(!fail, "plan predicted quarantine but the job succeeded");
                    prop_assert_eq!(&bytes(&result), expect);
                }
                Err(e) => {
                    prop_assert!(fail, "plan predicted success but got: {}", e);
                    prop_assert!(e.is_injected(), "unexpected real failure: {}", e);
                    prop_assert!(
                        matches!(e, JobError::Panicked { attempts: a, .. } if a == attempts),
                        "quarantine must record the full attempt budget"
                    );
                }
            }
        }
    }

    /// Cache read/write faults never fail a job: lookups degrade to misses,
    /// stores degrade to compute-only, and the results stay byte-identical
    /// to an uncached fault-free run.
    #[test]
    fn cache_faults_degrade_without_changing_results(plan_seed in 0u64..10_000) {
        quiet_injected_panics();
        let jobs = grid(plan_seed % 7);
        let clean = baseline(&jobs);
        let dir = std::env::temp_dir().join(format!(
            "wlan_chaos_cache_{}_{plan_seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("open temp cache");
        {
            let plan = FaultPlan::builder(plan_seed)
                .site(FaultSite::CacheRead, 0.5, None)
                .site(FaultSite::CacheWrite, 0.5, None)
                .build();
            let _guard = fault::scoped(plan);
            // Two passes: the second mixes hits (stores that survived) with
            // recomputes (reads that fault); bytes must never change.
            for _ in 0..2 {
                let results = run_scenarios_cached_checked(&jobs, 2, &cache);
                for (r, expect) in results.into_iter().zip(&clean) {
                    let r = r.expect("cache faults must never quarantine a job");
                    prop_assert_eq!(&bytes(&r), expect);
                }
            }
        }
        // Fault-free warm pass over whatever the cache retained: still identical.
        let warm = run_scenarios_cached_checked(&jobs, 2, &cache);
        for (r, expect) in warm.into_iter().zip(&clean) {
            prop_assert_eq!(&bytes(&r.expect("warm pass succeeds")), expect);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
