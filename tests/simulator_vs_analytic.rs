//! Cross-crate validation: the discrete-event simulator must agree with the
//! closed-form models of `wlan-analytic` in fully connected networks, where the
//! paper's equations are exact.

use wlan_sa::analytic::{self, SlotModel};
use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::backoff::{ExponentialBackoff, PPersistent};
use wlan_sa::sim::{PhyParams, SimDuration, SimulatorBuilder, Topology};

fn simulate_static_p(n: usize, p: f64, seed: u64, secs: u64) -> f64 {
    let phy = PhyParams::table1();
    let mut sim = SimulatorBuilder::new(phy, Topology::fully_connected(n))
        .seed(seed)
        .with_stations(move |_, _| PPersistent::new(p))
        .build();
    sim.run_for(SimDuration::from_millis(500));
    sim.reset_measurements();
    sim.run_for(SimDuration::from_secs(secs));
    sim.stats().system_throughput_bps()
}

#[test]
fn p_persistent_simulation_matches_equation_3() {
    let model = SlotModel::table1();
    // Sample points on both sides of the optimum for two network sizes.
    for &(n, p) in &[
        (10usize, 0.01),
        (10, 0.03),
        (10, 0.1),
        (40, 0.005),
        (40, 0.01),
        (40, 0.03),
    ] {
        let analytic_bps = analytic::system_throughput_uniform(&model, p, n);
        let sim_bps = simulate_static_p(n, p, 7, 4);
        let rel = (sim_bps - analytic_bps).abs() / analytic_bps;
        assert!(
            rel < 0.12,
            "n={n} p={p}: simulator {:.2} Mbps vs analytic {:.2} Mbps (rel err {rel:.3})",
            sim_bps / 1e6,
            analytic_bps / 1e6
        );
    }
}

#[test]
fn simulated_optimum_location_matches_analytic_optimum() {
    // The throughput measured at the analytic p* must dominate the throughput at
    // probabilities well below and well above it.
    let model = SlotModel::table1();
    let n = 20;
    let p_star = analytic::optimal_p(&model, &vec![1.0; n]);
    let at_star = simulate_static_p(n, p_star, 3, 4);
    let below = simulate_static_p(n, p_star / 6.0, 3, 4);
    let above = simulate_static_p(n, (p_star * 6.0).min(0.9), 3, 4);
    assert!(
        at_star > below,
        "optimum {at_star} should beat under-utilisation {below}"
    );
    assert!(
        at_star > above,
        "optimum {at_star} should beat collision overload {above}"
    );
    // And it should be close to the analytic optimum value.
    let analytic_opt = analytic::optimal_throughput(&model, &vec![1.0; n]);
    let rel = (at_star - analytic_opt).abs() / analytic_opt;
    assert!(rel < 0.12, "rel err {rel}");
}

#[test]
fn dcf_simulation_matches_bianchi_model() {
    // Standard 802.11 (without a retry limit, as Bianchi's chain assumes).
    let model = SlotModel::table1();
    for &n in &[5usize, 15, 30] {
        let phy = PhyParams::table1();
        let mut sim = SimulatorBuilder::new(phy, Topology::fully_connected(n))
            .seed(11)
            .with_stations(|_, phy| ExponentialBackoff::with_retry_limit(phy, None))
            .build();
        sim.run_for(SimDuration::from_millis(500));
        sim.reset_measurements();
        sim.run_for(SimDuration::from_secs(4));
        let sim_bps = sim.stats().system_throughput_bps();
        let bianchi = analytic::dcf_throughput(&model, n, 8, 7);
        let rel = (sim_bps - bianchi).abs() / bianchi;
        assert!(
            rel < 0.15,
            "n={n}: simulator {:.2} Mbps vs Bianchi {:.2} Mbps (rel err {rel:.3})",
            sim_bps / 1e6,
            bianchi / 1e6
        );
    }
}

#[test]
fn randomreset_simulation_matches_fixed_point_model() {
    // Static RandomReset(0; p0) throughput should match the appendix's fixed-point
    // model (eqs. 9-11) in a fully connected network.
    let model = SlotModel::table1();
    let chain = analytic::BackoffChain::table1();
    for &(n, p0) in &[(10usize, 0.2), (10, 0.8), (30, 0.5)] {
        let predicted = chain.random_reset_throughput(&model, n, 0, p0);
        let r = Scenario::new(
            Protocol::StaticRandomReset { stage: 0, p0 },
            TopologySpec::FullyConnected,
            n,
        )
        .durations(SimDuration::from_millis(500), SimDuration::from_secs(4))
        .seed(13)
        .run();
        let sim_bps = r.throughput_mbps * 1e6;
        let rel = (sim_bps - predicted).abs() / predicted;
        assert!(
            rel < 0.15,
            "n={n} p0={p0}: simulator {:.2} Mbps vs model {:.2} Mbps (rel err {rel:.3})",
            sim_bps / 1e6,
            predicted / 1e6
        );
    }
}

#[test]
fn idle_slot_statistics_match_geometric_prediction() {
    // Average idle slots per transmission at the AP ≈ P_I / (1 - P_I).
    let n = 15;
    let p = 0.01;
    let phy = PhyParams::table1();
    let mut sim = SimulatorBuilder::new(phy, Topology::fully_connected(n))
        .seed(5)
        .with_stations(move |_, _| PPersistent::new(p))
        .build();
    sim.run_for(SimDuration::from_secs(4));
    let measured = sim.stats().avg_idle_slots_per_transmission();
    let predicted = analytic::ppersistent::expected_idle_slots(&vec![p; n]);
    assert!(
        (measured - predicted).abs() / predicted < 0.15,
        "measured {measured} vs predicted {predicted}"
    );
}

#[test]
fn hidden_nodes_reduce_throughput_of_static_ppersistent() {
    // The same static policy must lose throughput once hidden pairs exist
    // (capture disabled: the paper's idealised channel).
    let p = 0.02;
    let n = 20;
    let fully = Scenario::new(
        Protocol::StaticPPersistent { p },
        TopologySpec::FullyConnected,
        n,
    )
    .durations(SimDuration::from_millis(500), SimDuration::from_secs(3))
    .capture(None)
    .seed(9)
    .run();
    let hidden = Scenario::new(
        Protocol::StaticPPersistent { p },
        TopologySpec::UniformDisc { radius: 20.0 },
        n,
    )
    .durations(SimDuration::from_millis(500), SimDuration::from_secs(3))
    .capture(None)
    .seed(9)
    .run();
    assert!(hidden.hidden_pairs > 0);
    assert!(
        hidden.throughput_mbps < fully.throughput_mbps,
        "hidden {} should be below fully connected {}",
        hidden.throughput_mbps,
        fully.throughput_mbps
    );
    assert!(hidden.collision_fraction > fully.collision_fraction);
}
