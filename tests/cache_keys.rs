//! Cache-key sensitivity: the content-addressed result cache is only sound
//! if the job key moves whenever **any** input that can influence a result
//! moves — every `Scenario` field, the seed, and the engine fingerprint —
//! and stays put under everything that cannot (builder call order, thread
//! counts). A missed dimension here silently serves one configuration's
//! results for another, which is the worst failure mode a cache can have.

use wlan_sa::core::cache::job_key_with_fingerprint;
use wlan_sa::core::{job_key, run_scenarios_cached, Protocol, ResultCache, Scenario, TopologySpec};
use wlan_sa::sim::{CaptureModel, SimDuration, TrafficSpec};

fn base() -> Scenario {
    Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, 8)
        .durations(SimDuration::from_millis(100), SimDuration::from_millis(400))
        .update_period(SimDuration::from_millis(50))
        .seed(42)
}

/// Every scenario field participates in the key: flipping any single field
/// (and nothing else) must change it, and all the mutated keys must be
/// mutually distinct.
#[test]
fn every_scenario_field_changes_the_key() {
    let reference = job_key(&base());
    let mutations: Vec<(&str, Scenario)> = vec![
        ("protocol", {
            let mut s = base();
            s.protocol = Protocol::ToraCsma;
            s
        }),
        ("protocol parameter", {
            let mut s = base();
            s.protocol = Protocol::StaticPPersistent { p: 0.02 };
            let mut t = base();
            t.protocol = Protocol::StaticPPersistent { p: 0.03 };
            assert_ne!(job_key(&s), job_key(&t), "p is inside the key");
            s
        }),
        ("topology", {
            let mut s = base();
            s.topology = TopologySpec::UniformDisc { radius: 16.0 };
            s
        }),
        ("n", {
            let mut s = base();
            s.n = 9;
            s
        }),
        ("weights", base().weights(vec![1.0; 8])),
        ("seed", base().seed(43)),
        (
            "warmup",
            base().durations(SimDuration::from_millis(101), SimDuration::from_millis(400)),
        ),
        (
            "measure",
            base().durations(SimDuration::from_millis(100), SimDuration::from_millis(401)),
        ),
        (
            "update_period",
            base().update_period(SimDuration::from_millis(51)),
        ),
        ("phy", {
            let mut s = base();
            s.phy.payload_bits += 8;
            s
        }),
        ("throughput_bin", {
            let mut s = base();
            s.throughput_bin += SimDuration::from_micros(1);
            s
        }),
        // The default is the indoor capture model, so the mutation disables it;
        // a parameter tweak inside the model must also move the key.
        ("capture", base().capture(None)),
        ("capture parameter", {
            let mut model = CaptureModel::default_indoor();
            model.sir_threshold += 1.0;
            base().capture(Some(model))
        }),
        (
            "traffic",
            base().traffic(TrafficSpec::poisson(100.0).with_queue_frames(32)),
        ),
    ];
    let mut keys = vec![("reference", reference)];
    for (field, scenario) in &mutations {
        let key = job_key(scenario);
        assert_ne!(
            key, keys[0].1,
            "mutating `{field}` did not change the cache key — the cache would serve stale results"
        );
        keys.push((field, key));
    }
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(
                keys[i].1, keys[j].1,
                "`{}` and `{}` collide on the same key",
                keys[i].0, keys[j].0
            );
        }
    }
}

/// The key is a function of the scenario's content, not of how the scenario
/// was built or which fingerprint-irrelevant environment it runs in.
#[test]
fn key_is_stable_across_builder_order_and_reruns() {
    let a = Scenario::new(Protocol::IdleSense, TopologySpec::Ring { radius: 8.0 }, 6)
        .seed(7)
        .durations(SimDuration::from_millis(50), SimDuration::from_millis(200))
        .update_period(SimDuration::from_millis(25));
    let b = Scenario::new(Protocol::IdleSense, TopologySpec::Ring { radius: 8.0 }, 6)
        .update_period(SimDuration::from_millis(25))
        .durations(SimDuration::from_millis(50), SimDuration::from_millis(200))
        .seed(7);
    assert_eq!(job_key(&a), job_key(&b));
    assert_eq!(job_key(&a), job_key(&a.clone()));
}

/// Bumping the engine fingerprint (the mandated step for any PR that changes
/// simulation behaviour) invalidates every key.
#[test]
fn engine_fingerprint_changes_the_key() {
    let s = base();
    let current = job_key_with_fingerprint(&s, wlan_sa::core::ENGINE_FINGERPRINT);
    assert_eq!(current, job_key(&s), "job_key uses the current fingerprint");
    assert_ne!(current, job_key_with_fingerprint(&s, "wlan-engine/next"));
}

/// A truncated (crash mid-write without the atomic rename) or hand-corrupted
/// entry must be detected, treated as a miss, recomputed and healed — never
/// deserialised into a wrong result.
#[test]
fn corrupted_and_truncated_entries_are_recomputed() {
    let dir = std::env::temp_dir().join(format!("wlan_cache_keys_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = [
        Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, 4)
            .durations(SimDuration::from_millis(20), SimDuration::from_millis(80))
            .seed(3),
    ];
    let key = job_key(&jobs[0]);

    let cache = ResultCache::open(&dir).expect("open cache");
    let cold = run_scenarios_cached(&jobs, 1, &cache);
    let reference = serde_json::to_string(&cold).unwrap();
    assert_eq!(cache.stats().misses, 1);

    let entry = dir.join(format!("{key}.json"));
    for corruption in ["", "{\"key\": tru", "{}"] {
        std::fs::write(&entry, corruption).unwrap();
        let healed = run_scenarios_cached(&jobs, 1, &cache);
        assert_eq!(
            serde_json::to_string(&healed).unwrap(),
            reference,
            "corrupt entry {corruption:?} was not recomputed to the reference result"
        );
    }
    // After the last heal the entry verifies again: a further pass is a hit.
    let before = cache.stats().hits;
    run_scenarios_cached(&jobs, 1, &cache);
    assert_eq!(cache.stats().hits, before + 1);
    let _ = std::fs::remove_dir_all(&dir);
}
