//! Determinism smoke tests: the discrete-event engine is specified to be fully
//! deterministic for a given seed, which everything else relies on — averaged
//! figure sweeps, the property tests' reproducibility, and regression
//! comparisons between PRs.

use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn run_once(protocol: Protocol, topology: TopologySpec, seed: u64) -> wlan_sa::ScenarioResult {
    Scenario::new(protocol, topology, 8)
        .durations(SimDuration::from_millis(200), SimDuration::from_millis(400))
        .seed(seed)
        .run()
}

/// Two runs with the same seed must agree bit-for-bit on every metric,
/// including the full per-station and time-series vectors.
#[test]
fn same_seed_is_bit_identical() {
    for (protocol, topology) in [
        (Protocol::Standard80211, TopologySpec::FullyConnected),
        (Protocol::WTopCsma, TopologySpec::FullyConnected),
        (
            Protocol::ToraCsma,
            TopologySpec::UniformDisc { radius: 16.0 },
        ),
    ] {
        let a = run_once(protocol, topology.clone(), 12345);
        let b = run_once(protocol, topology.clone(), 12345);
        assert_eq!(a.throughput_mbps.to_bits(), b.throughput_mbps.to_bits());
        assert_eq!(a.per_node_mbps.len(), b.per_node_mbps.len());
        for (x, y) in a.per_node_mbps.iter().zip(&b.per_node_mbps) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.avg_idle_slots.to_bits(), b.avg_idle_slots.to_bits());
        assert_eq!(
            a.collision_fraction.to_bits(),
            b.collision_fraction.to_bits()
        );
        assert_eq!(a.jain_index.to_bits(), b.jain_index.to_bits());
        assert_eq!(a.hidden_pairs, b.hidden_pairs);
        assert_eq!(a.throughput_series.len(), b.throughput_series.len());
        for ((ta, sa, na), (tb, sb, nb)) in a.throughput_series.iter().zip(&b.throughput_series) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.to_bits(), sb.to_bits());
            assert_eq!(na, nb);
        }
        assert_eq!(a.control_trace.len(), b.control_trace.len());
        for ((ta, va), (tb, vb)) in a.control_trace.iter().zip(&b.control_trace) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}

/// Different seeds must actually change the realisation — if they didn't, the
/// seed would be silently ignored and the averaged sweeps meaningless.
#[test]
fn different_seeds_differ() {
    let a = run_once(Protocol::Standard80211, TopologySpec::FullyConnected, 1);
    let b = run_once(Protocol::Standard80211, TopologySpec::FullyConnected, 2);
    assert_ne!(
        a.throughput_mbps.to_bits(),
        b.throughput_mbps.to_bits(),
        "seeds 1 and 2 produced identical throughput ({}); the seed is being ignored",
        a.throughput_mbps
    );
}
