//! Cache degradation: a broken result cache must never abort a campaign or
//! change a single byte of its output — it degrades to compute-only with a
//! single warning (the first failed store; later failures are counted
//! silently via [`ResultCache::store_failures`]).

use wlan_sa::core::fault::{self, FaultPlan, FaultSite};
use wlan_sa::core::{
    run_scenarios_cached_checked, run_scenarios_checked, Protocol, ResultCache, Scenario,
    ScenarioResult, TopologySpec,
};
use wlan_sa::sim::SimDuration;

fn jobs() -> Vec<Scenario> {
    (1..=3u64)
        .map(|seed| {
            Scenario::new(
                Protocol::StaticPPersistent { p: 0.04 },
                TopologySpec::FullyConnected,
                5,
            )
            .durations(SimDuration::from_millis(50), SimDuration::from_millis(200))
            .seed(seed)
        })
        .collect()
}

fn bytes(results: &[ScenarioResult]) -> String {
    serde_json::to_string(&results.to_vec()).expect("serialise results")
}

fn unwrap_all(
    results: Vec<Result<ScenarioResult, wlan_sa::core::JobError>>,
) -> Vec<ScenarioResult> {
    results
        .into_iter()
        .map(|r| r.expect("cache degradation must never fail a job"))
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wlan_degradation_{tag}_{}", std::process::id()))
}

/// A cache directory that vanishes mid-campaign (the closest a root-run test
/// gets to a read-only directory — permission bits don't bind root): every
/// store fails, the campaign degrades to compute-only, bytes unchanged.
#[test]
fn vanished_cache_dir_degrades_to_compute_only() {
    let reference = unwrap_all(run_scenarios_checked(&jobs(), 1));
    let dir = temp_dir("vanished");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).expect("open temp cache");
    std::fs::remove_dir_all(&dir).expect("pull the directory out from under the cache");

    let results = unwrap_all(run_scenarios_cached_checked(&jobs(), 2, &cache));
    assert_eq!(
        bytes(&results),
        bytes(&reference),
        "results must not change"
    );
    assert!(cache.degraded(), "failed stores must flip degraded mode");
    assert_eq!(
        cache.store_failures(),
        3,
        "every store failed (one warning, the rest counted silently)"
    );
    // The degraded cache keeps working compute-only on a second pass.
    let again = unwrap_all(run_scenarios_cached_checked(&jobs(), 1, &cache));
    assert_eq!(bytes(&again), bytes(&reference));
    assert_eq!(cache.store_failures(), 6);
}

/// An unopenable cache path (a regular file where the directory should be —
/// `create_dir_all` fails even for root) is an error at `open`, which
/// callers turn into uncached execution.
#[test]
fn cache_open_on_file_path_fails_cleanly() {
    let path = temp_dir("filepath");
    let _ = std::fs::remove_dir_all(&path);
    std::fs::write(&path, "not a directory").expect("create blocking file");
    assert!(ResultCache::open(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

/// An injected permanent write fault behaves exactly like the unwritable
/// directory: compute-only, single-warning degradation, identical bytes —
/// and clearing the fault heals the cache in place.
#[test]
fn injected_write_fault_degrades_then_heals() {
    let reference = unwrap_all(run_scenarios_checked(&jobs(), 1));
    let dir = temp_dir("writefault");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).expect("open temp cache");
    {
        let _guard = fault::scoped(
            FaultPlan::builder(21)
                .site(FaultSite::CacheWrite, 1.0, None)
                .build(),
        );
        let results = unwrap_all(run_scenarios_cached_checked(&jobs(), 2, &cache));
        assert_eq!(bytes(&results), bytes(&reference));
        assert!(cache.degraded());
        assert_eq!(cache.store_failures(), 3);
        assert_eq!(cache.stats().hits, 0, "nothing was ever stored");
    }
    // Fault cleared: stores land again and the next pass is served from disk.
    let healed = unwrap_all(run_scenarios_cached_checked(&jobs(), 1, &cache));
    assert_eq!(bytes(&healed), bytes(&reference));
    let warm = unwrap_all(run_scenarios_cached_checked(&jobs(), 1, &cache));
    assert_eq!(bytes(&warm), bytes(&reference));
    assert_eq!(cache.stats().hits, 3, "healed cache serves from disk");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected permanent read fault turns every lookup into a miss: jobs
/// recompute (bytes identical), the entries stay intact, and clearing the
/// fault restores hits.
#[test]
fn injected_read_fault_forces_recompute_not_corruption() {
    let reference = unwrap_all(run_scenarios_checked(&jobs(), 1));
    let dir = temp_dir("readfault");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).expect("open temp cache");
    let cold = unwrap_all(run_scenarios_cached_checked(&jobs(), 2, &cache));
    assert_eq!(bytes(&cold), bytes(&reference));
    {
        let _guard = fault::scoped(
            FaultPlan::builder(22)
                .site(FaultSite::CacheRead, 1.0, None)
                .build(),
        );
        let blinded = unwrap_all(run_scenarios_cached_checked(&jobs(), 2, &cache));
        assert_eq!(bytes(&blinded), bytes(&reference));
        assert_eq!(cache.stats().hits, 0, "a read fault can never hit");
    }
    let warm = unwrap_all(run_scenarios_cached_checked(&jobs(), 1, &cache));
    assert_eq!(bytes(&warm), bytes(&reference));
    assert_eq!(cache.stats().hits, 3, "entries survived the read faults");
    let _ = std::fs::remove_dir_all(&dir);
}
