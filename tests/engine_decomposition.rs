//! Structural regression test for the PR 6 engine decomposition.
//!
//! The engine facade (`crates/sim/src/engine/mod.rs`) used to be a
//! 1,767-line monolith whose core was a single `match event` over every
//! MAC/channel/AP/traffic event. That match now lives in four plug-in
//! components dispatched through the `wlan-des` component registry, and
//! this test pins the shape so the monolith cannot silently grow back:
//! the facade must stay a facade (bounded size, no event match of its
//! own, wired through `Simulation::add_component`), and each component
//! file must keep handling its events itself.

const ENGINE_MOD: &str = include_str!("../crates/sim/src/engine/mod.rs");

/// The facade may hold the builder, the wiring, and the query surface —
/// but not handler logic. Its size is pinned with headroom over the
/// current ~670 lines (docs included); the pre-refactor monolith was
/// 1,767 lines, so any re-absorption of a component trips this long
/// before it gets that far.
#[test]
fn engine_mod_stays_a_facade() {
    let lines = ENGINE_MOD.lines().count();
    assert!(
        lines < 750,
        "crates/sim/src/engine/mod.rs has grown to {lines} lines (budget 750); \
         move event-handling logic into a component instead of the facade"
    );
}

/// The facade must not contain an event match: dispatch goes through the
/// component registry (`Simulation::add_component` + per-component
/// `Component::handle`), never through a central `match event`.
#[test]
fn engine_mod_has_no_event_match() {
    assert!(
        !ENGINE_MOD.contains("match event"),
        "engine/mod.rs contains a `match event` — the monolithic dispatch is growing back"
    );
    assert!(
        ENGINE_MOD.contains("add_component"),
        "engine/mod.rs no longer wires components through the registry"
    );
}

/// Each mechanism named by the decomposition keeps its own component file
/// implementing the kernel's `Component` trait (the ISSUE 6 acceptance
/// criterion names traffic arrivals and the AP controller explicitly).
#[test]
fn mechanisms_are_components() {
    for (name, src) in [
        (
            "station.rs",
            include_str!("../crates/sim/src/engine/station.rs"),
        ),
        (
            "channel.rs",
            include_str!("../crates/sim/src/engine/channel.rs"),
        ),
        (
            "apctl.rs",
            include_str!("../crates/sim/src/engine/apctl.rs"),
        ),
        (
            "arrivals.rs",
            include_str!("../crates/sim/src/engine/arrivals.rs"),
        ),
    ] {
        assert!(
            src.contains("impl Component<World, Event> for"),
            "engine/{name} no longer implements the kernel Component trait"
        );
    }
}
