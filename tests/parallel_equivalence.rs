//! Parallel-vs-serial equivalence: the campaign runner's contract is that the
//! worker-thread count influences only wall-clock time, never results. These
//! tests run the same campaign on 1 thread and on N threads and require the
//! serialised output to be **byte-identical**, which is the same property the
//! `repro_all` acceptance check (`WLAN_THREADS=1` vs `WLAN_THREADS=8`) relies
//! on, scaled down to test size.

use wlan_sa::core::{
    run_scenarios_cached, run_seeds_parallel, Campaign, Protocol, ResultCache, Scenario,
    ScenarioResult, TopologySpec,
};
use wlan_sa::sim::SimDuration;

fn campaign() -> Campaign {
    Campaign::new()
        .protocols(&[
            Protocol::Standard80211,
            Protocol::WTopCsma,
            Protocol::StaticPPersistent { p: 0.02 },
        ])
        .topology("ring", TopologySpec::Ring { radius: 8.0 })
        .topology("disc 16 m", TopologySpec::UniformDisc { radius: 16.0 })
        .node_counts(&[4, 8])
        .seeds(&[1, 2, 3])
        .warmups(SimDuration::from_millis(200), SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(300))
        .update_period(SimDuration::from_millis(50))
}

/// The full per-seed result set — every metric, series and trace — must agree
/// byte-for-byte between a 1-thread and an 8-thread run of the same campaign.
#[test]
fn campaign_results_are_identical_across_thread_counts() {
    let serial = campaign().threads(1).run();
    let parallel = campaign().threads(8).run();
    assert_eq!(serial.cells.len(), 12, "3 protocols × 2 topologies × 2 N");
    let raw_serial: Vec<&ScenarioResult> =
        serial.cells.iter().flat_map(|c| c.results.iter()).collect();
    let raw_parallel: Vec<&ScenarioResult> = parallel
        .cells
        .iter()
        .flat_map(|c| c.results.iter())
        .collect();
    let a = serde_json::to_string(&raw_serial).expect("serialise serial");
    let b = serde_json::to_string(&raw_parallel).expect("serialise parallel");
    assert_eq!(
        a, b,
        "campaign results changed with the thread count — determinism contract broken"
    );
}

/// The aggregated report (mean/stddev/CI per cell) must also be byte-identical.
#[test]
fn campaign_reports_are_identical_across_thread_counts() {
    let a = serde_json::to_string(&campaign().threads(1).run().report()).unwrap();
    let b = serde_json::to_string(&campaign().threads(8).run().report()).unwrap();
    assert_eq!(a, b);
}

/// Warm-cache equivalence, the property the incremental `repro_all` rerun
/// relies on: running the same job list through the content-addressed cache a
/// second time must execute **zero** engine jobs (every lookup hits) and
/// serialise byte-identically to the cold pass — even when the warm pass uses
/// a different thread count, since nothing about the execution environment
/// enters the cache key.
#[test]
fn warm_cache_second_pass_runs_zero_engine_jobs() {
    let dir = std::env::temp_dir().join(format!("wlan_warm_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = campaign().jobs();
    assert!(!jobs.is_empty());

    let cache = ResultCache::open(&dir).expect("open cache");
    let cold = run_scenarios_cached(&jobs, 1, &cache);
    assert_eq!(
        cache.stats().misses,
        jobs.len() as u64,
        "the cold pass computes every job"
    );
    assert_eq!(cache.stats().hits, 0);

    let warm = run_scenarios_cached(&jobs, 8, &cache);
    assert_eq!(
        cache.stats().hits,
        jobs.len() as u64,
        "the warm pass must be served entirely from the cache"
    );
    assert_eq!(
        cache.stats().misses,
        jobs.len() as u64,
        "the warm pass must not re-execute any engine job"
    );
    let a = serde_json::to_string(&cold).expect("serialise cold");
    let b = serde_json::to_string(&warm).expect("serialise warm");
    assert_eq!(
        a, b,
        "cached results are not byte-identical to computed ones"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_seeds_parallel` is the narrow entry point `run_seeds` is rewired
/// through; it must match the 1-thread reference for any worker count.
#[test]
fn run_seeds_is_thread_count_invariant() {
    let base = Scenario::new(Protocol::ToraCsma, TopologySpec::FullyConnected, 6)
        .durations(SimDuration::from_millis(200), SimDuration::from_millis(300))
        .update_period(SimDuration::from_millis(50));
    let seeds: Vec<u64> = (1..=6).collect();
    let reference = run_seeds_parallel(&base, &seeds, 1);
    for threads in [2, 3, 8] {
        let parallel = run_seeds_parallel(&base, &seeds, threads);
        let a = serde_json::to_string(&reference).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b, "{threads} threads diverged from the serial reference");
    }
}
