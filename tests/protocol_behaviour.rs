//! End-to-end behaviour of the paper's protocols: convergence to the optimum in
//! fully connected networks, weighted fairness, robustness with hidden nodes,
//! and dynamic re-convergence. These are the claims of Theorems 1-3 and of the
//! evaluation section, checked at reduced scale so the suite stays fast.

use wlan_sa::analytic;
use wlan_sa::core::{
    run_dynamic, MembershipChange, MembershipSchedule, Protocol, Scenario, TopologySpec,
};
use wlan_sa::sim::SimDuration;

fn adaptive(
    proto: Protocol,
    n: usize,
    warm: u64,
    measure: u64,
    seed: u64,
) -> wlan_sa::ScenarioResult {
    Scenario::new(proto, TopologySpec::FullyConnected, n)
        .durations(
            SimDuration::from_secs(warm),
            SimDuration::from_secs(measure),
        )
        .seed(seed)
        .run()
}

#[test]
fn wtop_converges_to_near_optimal_throughput() {
    let n = 10;
    let model = analytic::SlotModel::table1();
    let optimum = analytic::optimal_throughput(&model, &vec![1.0; n]) / 1e6;
    let p_star = analytic::optimal_p(&model, &vec![1.0; n]);
    let r = adaptive(Protocol::WTopCsma, n, 40, 8, 2);
    assert!(
        r.throughput_mbps > 0.9 * optimum,
        "wTOP reached {:.2} Mbps, optimum is {:.2} Mbps",
        r.throughput_mbps,
        optimum
    );
    let p_end = r.control_trace.last().unwrap().1;
    assert!(
        p_end > p_star / 3.0 && p_end < p_star * 3.0,
        "converged p {p_end} should be within 3x of p* {p_star}"
    );
}

#[test]
fn tora_converges_to_near_optimal_throughput() {
    let n = 10;
    let model = analytic::SlotModel::table1();
    let optimum = analytic::optimal_throughput(&model, &vec![1.0; n]) / 1e6;
    let r = adaptive(Protocol::ToraCsma, n, 40, 8, 2);
    assert!(
        r.throughput_mbps > 0.85 * optimum,
        "TORA reached {:.2} Mbps, optimum is {:.2} Mbps",
        r.throughput_mbps,
        optimum
    );
}

#[test]
fn adaptive_schemes_beat_standard_dcf_in_fully_connected_networks() {
    // The paper's Fig. 3: with many stations and CWmin = 8, standard 802.11 is
    // clearly below the tuned schemes.
    let n = 30;
    let dcf = adaptive(Protocol::Standard80211, n, 3, 6, 4);
    let wtop = adaptive(Protocol::WTopCsma, n, 50, 6, 4);
    let tora = adaptive(Protocol::ToraCsma, n, 50, 6, 4);
    assert!(
        wtop.throughput_mbps > dcf.throughput_mbps,
        "wTOP {:.2} vs DCF {:.2}",
        wtop.throughput_mbps,
        dcf.throughput_mbps
    );
    assert!(
        tora.throughput_mbps > dcf.throughput_mbps,
        "TORA {:.2} vs DCF {:.2}",
        tora.throughput_mbps,
        dcf.throughput_mbps
    );
}

#[test]
fn wtop_provides_weighted_fairness() {
    // Table II: normalised throughput (throughput / weight) is equal across
    // stations, regardless of the weight mix.
    let weights = vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0];
    let r = Scenario::new(
        Protocol::WTopCsma,
        TopologySpec::FullyConnected,
        weights.len(),
    )
    .weights(weights.clone())
    .durations(SimDuration::from_secs(40), SimDuration::from_secs(15))
    .seed(6)
    .run();
    assert!(
        r.weighted_jain_index > 0.97,
        "weighted Jain index {}",
        r.weighted_jain_index
    );
    // A weight-3 station should get roughly 3x the throughput of a weight-1 station.
    let s1 = r.per_node_mbps[0];
    let s3 = r.per_node_mbps[9];
    let ratio = s3 / s1;
    assert!(
        ratio > 2.2 && ratio < 3.8,
        "weight-3/weight-1 throughput ratio {ratio}"
    );
}

#[test]
fn equal_weights_give_plain_fairness() {
    let r = adaptive(Protocol::WTopCsma, 8, 40, 10, 8);
    assert!(r.jain_index > 0.95, "Jain index {}", r.jain_index);
}

#[test]
fn hidden_nodes_break_idlesense_but_not_the_sa_schemes() {
    // The paper's headline (Figs. 6-7, Table III): with hidden terminals the
    // model-based IdleSense collapses while TORA-CSMA stays near the top and
    // wTOP-CSMA remains serviceable; TORA beats wTOP.
    let n = 25;
    let topo = TopologySpec::UniformDisc { radius: 16.0 };
    let mut results = Vec::new();
    for proto in [Protocol::IdleSense, Protocol::WTopCsma, Protocol::ToraCsma] {
        let r = Scenario::new(proto, topo.clone(), n)
            .durations(SimDuration::from_secs(50), SimDuration::from_secs(8))
            .seed(11)
            .run();
        results.push(r);
    }
    let idlesense = &results[0];
    let wtop = &results[1];
    let tora = &results[2];
    assert!(idlesense.hidden_pairs > 0);
    assert!(
        tora.throughput_mbps > wtop.throughput_mbps,
        "TORA {:.2} should beat wTOP {:.2} with hidden nodes",
        tora.throughput_mbps,
        wtop.throughput_mbps
    );
    assert!(
        wtop.throughput_mbps > 3.0 * idlesense.throughput_mbps,
        "wTOP {:.2} should dwarf IdleSense {:.2} with hidden nodes",
        wtop.throughput_mbps,
        idlesense.throughput_mbps
    );
    assert!(
        tora.throughput_mbps > 10.0,
        "TORA should stay above 10 Mbps, got {:.2}",
        tora.throughput_mbps
    );
}

#[test]
fn wtop_tracks_membership_changes() {
    // Figs. 8-9 in miniature: throughput recovers after the number of stations
    // doubles, because the controller re-converges.
    let schedule = MembershipSchedule {
        initial_active: 5,
        changes: vec![MembershipChange {
            at_secs: 40.0,
            active: 15,
        }],
    };
    let mut scenario = Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, 15)
        .durations(SimDuration::ZERO, SimDuration::from_secs(80))
        .seed(9);
    scenario.throughput_bin = SimDuration::from_secs(2);
    let result = run_dynamic(&scenario, &schedule, SimDuration::from_secs(80));

    let late: Vec<f64> = result
        .throughput_series
        .iter()
        .filter(|(t, _, _)| *t > 65.0)
        .map(|(_, mbps, _)| *mbps)
        .collect();
    assert!(!late.is_empty());
    let late_avg = late.iter().sum::<f64>() / late.len() as f64;
    assert!(
        late_avg > 20.0,
        "throughput should recover after the membership change, got {late_avg:.2} Mbps"
    );
    // The control variable must have moved downward after more stations arrived.
    let p_before = result
        .control_trace
        .iter()
        .filter(|(t, _)| *t > 30.0 && *t < 40.0)
        .map(|(_, p)| *p)
        .next_back()
        .unwrap();
    let p_after = result.control_trace.last().unwrap().1;
    assert!(
        p_after < p_before,
        "control variable should decrease when stations join: before {p_before}, after {p_after}"
    );
}

#[test]
fn per_seed_results_are_reproducible_and_seed_sensitive() {
    let a = adaptive(Protocol::ToraCsma, 12, 10, 5, 42);
    let b = adaptive(Protocol::ToraCsma, 12, 10, 5, 42);
    let c = adaptive(Protocol::ToraCsma, 12, 10, 5, 43);
    assert_eq!(a.throughput_mbps, b.throughput_mbps);
    assert_eq!(a.per_node_mbps, b.per_node_mbps);
    assert_ne!(a.throughput_mbps, c.throughput_mbps);
}
