//! Golden-trace equivalence suite for the simulator hot path.
//!
//! Every `Protocol` is run on a fully-connected and a hidden-node topology at a
//! fixed seed, and the resulting `ScenarioResult` must serialise **byte for
//! byte** to the fixtures committed under `tests/golden/`. The fixtures were
//! generated before the hot-path refactor (adjacency lists, enum dispatch,
//! transmission slab), so these tests pin the refactored engine to the exact
//! event ordering and RNG stream of the original O(N)-scan implementation.
//!
//! To regenerate the fixtures after an *intentional* behaviour change:
//!
//! ```text
//! WLAN_GOLDEN_REGEN=1 cargo test --release --test golden_trace
//! ```
//!
//! and commit the diff under `tests/golden/` together with an explanation of
//! why the trace legitimately changed.

use wlan_sa::{Protocol, Scenario, SimDuration, TopologySpec, TrafficSpec};

/// The scenario grid the fixtures cover: every protocol on both topology
/// classes. Short runs keep the suite fast; equivalence does not require the
/// adaptive controllers to converge, only that every code path draws the same
/// random numbers in the same order.
fn cases() -> Vec<(&'static str, Scenario)> {
    let protocols: Vec<(&'static str, Protocol)> = vec![
        ("standard80211", Protocol::Standard80211),
        ("idlesense", Protocol::IdleSense),
        ("wtop", Protocol::WTopCsma),
        ("tora", Protocol::ToraCsma),
        (
            "static_ppersistent",
            Protocol::StaticPPersistent { p: 0.03 },
        ),
        (
            "static_randomreset",
            Protocol::StaticRandomReset { stage: 1, p0: 0.6 },
        ),
    ];
    let topologies: Vec<(&'static str, TopologySpec)> = vec![
        ("fully_connected", TopologySpec::FullyConnected),
        ("hidden_disc20", TopologySpec::UniformDisc { radius: 20.0 }),
    ];
    let mut cases = Vec::new();
    for (pname, proto) in &protocols {
        for (tname, topo) in &topologies {
            let scenario = Scenario::new(*proto, topo.clone(), 8)
                .seed(7)
                .durations(SimDuration::from_millis(300), SimDuration::from_millis(700))
                .update_period(SimDuration::from_millis(50));
            cases.push((
                Box::leak(format!("{pname}_{tname}").into_boxed_str()) as &'static str,
                scenario,
            ));
        }
    }
    // The finite-load fixture: Poisson offered load at roughly half the
    // 8-station capacity into small bounded queues. Pins the traffic
    // subsystem — arrival tier, QueueEmpty lifecycle, delay accounting and
    // the serialised `traffic` summary — the same way the saturated grid
    // pins the engine hot path.
    cases.push((
        "standard80211_finite_poisson",
        Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, 8)
            .seed(7)
            .durations(SimDuration::from_millis(300), SimDuration::from_millis(700))
            .update_period(SimDuration::from_millis(50))
            .traffic(TrafficSpec::poisson(250.0).with_queue_frames(16)),
    ));
    cases
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn scenario_results_match_pre_refactor_fixtures() {
    let regen = std::env::var("WLAN_GOLDEN_REGEN")
        .map(|v| v == "1")
        .unwrap_or(false);
    let dir = golden_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures = Vec::new();
    for (name, scenario) in cases() {
        let result = scenario.run();
        let json = serde_json::to_string_pretty(&result).expect("serialise ScenarioResult");
        let path = dir.join(format!("{name}.json"));
        if regen {
            std::fs::write(&path, &json).expect("write fixture");
            eprintln!("regenerated {}", path.display());
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with WLAN_GOLDEN_REGEN=1",
                path.display()
            )
        });
        if json != expected {
            failures.push(name);
        }
    }
    assert!(
        failures.is_empty(),
        "ScenarioResult diverged from pre-refactor golden fixtures for: {failures:?}\n\
         The refactored engine must preserve the exact event ordering and RNG draw\n\
         order of the original implementation (see docs/ARCHITECTURE.md, the\n\
         determinism contract)."
    );
}

/// The telemetry layer's zero-perturbation contract, checked end to end: every
/// golden case re-run with observability at maximum verbosity — kernel
/// dispatch counters on *and* the wall-clock self-profiler sampling every
/// single event — must serialise byte-for-byte to the same fixture as the
/// uninstrumented run. Telemetry draws no RNG and schedules nothing, so the
/// `(time, seq)` order and every statistic are untouched.
#[test]
fn telemetry_at_max_verbosity_is_byte_identical_to_fixtures() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = golden_dir();
    let mut failures = Vec::new();
    for (name, scenario) in cases() {
        let samples = Arc::new(AtomicU64::new(0));
        let sink_samples = Arc::clone(&samples);
        let mut sim = scenario.build_simulator();
        sim.enable_metrics();
        sim.set_profiler(
            1,
            Box::new(move |_sample| {
                sink_samples.fetch_add(1, Ordering::Relaxed);
            }),
        );
        scenario.advance_until(&mut sim, scenario.end_time());
        let result = scenario.collect(&sim);
        let json = serde_json::to_string_pretty(&result).expect("serialise ScenarioResult");
        let path = dir.join(format!("{name}.json"));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with WLAN_GOLDEN_REGEN=1",
                path.display()
            )
        });
        if json != expected {
            failures.push(name);
        }
        // The instrumentation really was live: the dispatch registry saw
        // every event and the profiler (sampling every event, scheduler and
        // handler timed separately) streamed two samples per event.
        let report = sim.metrics_report().expect("metrics were enabled");
        let processed = report.kernel.events_processed;
        assert!(processed > 0, "{name}: no events counted");
        let dispatched: u64 = report.kernel.dispatch.iter().map(|d| d.total).sum();
        assert_eq!(dispatched, processed, "{name}: dispatch rows disagree");
        assert_eq!(
            samples.load(Ordering::Relaxed),
            2 * processed,
            "{name}: profiler sample count"
        );
        assert!(report.tx_slab_high_water > 0, "{name}: slab untouched");
    }
    assert!(
        failures.is_empty(),
        "telemetry at max verbosity perturbed the trace for: {failures:?}\n\
         Observability must be a pure observer: no RNG draws, no scheduling,\n\
         no `(time, seq)` consumption (see crates/des/src/metrics.rs)."
    );
}
