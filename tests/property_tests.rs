//! Property-based tests (proptest) over the core invariants of the analytical
//! models, the stochastic-approximation library and the simulator.

use proptest::prelude::*;
use wlan_sa::analytic::{self, BackoffChain, SlotModel};
use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sa::{KieferWolfowitz, PowerLawGains};
use wlan_sa::sim::backoff::{BackoffPolicy, ExponentialBackoff, PPersistent, RandomReset};
use wlan_sa::sim::{
    ArrivalProcess, PhyParams, SimDuration, SimulatorBuilder, Topology, TrafficSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: the weighted mapping preserves the odds ratio exactly.
    #[test]
    fn weighted_mapping_preserves_odds_ratio(p in 1e-4f64..0.8, w in 0.1f64..10.0) {
        let pw = analytic::station_probability(p, w);
        let lhs = pw / (1.0 - pw);
        let rhs = w * p / (1.0 - p);
        prop_assert!((lhs - rhs).abs() / rhs < 1e-9);
    }

    /// Eq. (2) / eq. (3): per-station throughputs always sum to the system throughput.
    #[test]
    fn per_station_throughput_sums_to_system(
        n in 2usize..20,
        p in 1e-4f64..0.3,
        seed in 0u64..1000,
    ) {
        let model = SlotModel::table1();
        // Heterogeneous probabilities derived deterministically from the seed.
        let probs: Vec<f64> = (0..n)
            .map(|i| (p * (1.0 + ((seed + i as u64) % 7) as f64 / 7.0)).min(0.9))
            .collect();
        let total: f64 =
            (0..n).map(|t| analytic::ppersistent::per_station_throughput(&model, &probs, t)).sum();
        let system = analytic::ppersistent::system_throughput_vector(&model, &probs);
        prop_assert!((total - system).abs() <= 1e-6 * system.max(1.0));
    }

    /// Theorem 2: S(p, W) is quasi-concave in p for any positive weight vector.
    #[test]
    fn weighted_throughput_is_quasi_concave(
        n in 2usize..15,
        w_low in 0.5f64..1.5,
        w_high in 1.5f64..5.0,
    ) {
        let model = SlotModel::table1();
        let weights: Vec<f64> =
            (0..n).map(|i| if i % 2 == 0 { w_low } else { w_high }).collect();
        let ys: Vec<f64> = (1..200)
            .map(|i| analytic::system_throughput(&model, i as f64 / 200.0, &weights))
            .collect();
        prop_assert!(analytic::is_quasi_concave(&ys, 1e-6));
    }

    /// The optimal control variable decreases as stations are added, and the
    /// optimal throughput stays within a narrow band (the paper's observation that
    /// the achievable optimum is essentially independent of N).
    #[test]
    fn optimal_p_monotone_in_n(n in 2usize..40) {
        let model = SlotModel::table1();
        let p_n = analytic::optimal_p(&model, &vec![1.0; n]);
        let p_n1 = analytic::optimal_p(&model, &vec![1.0; n + 1]);
        prop_assert!(p_n1 < p_n);
        // The achievable optimum is nearly independent of N once the network has a
        // handful of stations (very small N still shows a visible drop per station).
        if n >= 5 {
            let s_n = analytic::optimal_throughput(&model, &vec![1.0; n]);
            let s_n1 = analytic::optimal_throughput(&model, &vec![1.0; n + 1]);
            prop_assert!((s_n - s_n1).abs() / s_n < 0.02);
        }
    }

    /// Bianchi's fixed point is always a consistent pair (τ, c) with both in (0, 1).
    #[test]
    fn bianchi_fixed_point_is_consistent(n in 2usize..60, w_exp in 3u32..8, m in 1u8..8) {
        let model = SlotModel::table1();
        let w = 1u32 << w_exp;
        let op = analytic::solve_dcf(&model, n, w, m);
        prop_assert!(op.tau > 0.0 && op.tau < 1.0);
        prop_assert!(op.collision_probability >= 0.0 && op.collision_probability < 1.0);
        let back = analytic::bianchi::collision_given_tau(op.tau, n);
        prop_assert!((back - op.collision_probability).abs() < 1e-6);
    }

    /// Lemma 4 / Lemma 5: α_j(c) is non-decreasing in j and the RandomReset attempt
    /// probability is non-decreasing in p0 and bounded by the class range (Lemma 6).
    #[test]
    fn randomreset_structure(
        c in 0.0f64..0.999,
        p0_low in 0.0f64..0.5,
        p0_high in 0.5f64..1.0,
        j in 0u8..7,
        n in 2usize..50,
    ) {
        let chain = BackoffChain::table1();
        let alpha = chain.alpha(c);
        for k in 0..alpha.len() - 1 {
            prop_assert!(alpha[k] <= alpha[k + 1] + 1e-12);
        }
        let tau_low = chain.tau_given_collision_random_reset(c, j, p0_low);
        let tau_high = chain.tau_given_collision_random_reset(c, j, p0_high);
        prop_assert!(tau_low <= tau_high + 1e-12);

        let (lo, hi) = chain.attempt_probability_range(n);
        let tau = chain.random_reset_attempt_probability(n, j, p0_high);
        prop_assert!(tau >= lo - 1e-9 && tau <= hi + 1e-9);
    }

    /// Backoff policies never draw a counter outside their declared window, no
    /// matter what success/failure history they have seen.
    #[test]
    fn backoff_samples_stay_in_window(
        history in proptest::collection::vec(any::<bool>(), 0..64),
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let phy = PhyParams::table1();
        let mut dcf = ExponentialBackoff::new(&phy);
        let mut rr = RandomReset::new(&phy, 2, 0.4);
        for &ok in &history {
            if ok {
                dcf.on_success(&mut rng);
                rr.on_success(&mut rng);
            } else {
                dcf.on_failure(&mut rng);
                rr.on_failure(&mut rng);
            }
        }
        for _ in 0..32 {
            prop_assert!(dcf.next_backoff(&mut rng) < phy.cw_max as u64);
            prop_assert!(rr.next_backoff(&mut rng) < phy.cw_max as u64);
            prop_assert!(dcf.backoff_stage().unwrap() <= phy.max_backoff_stage());
            prop_assert!(rr.backoff_stage().unwrap() <= phy.max_backoff_stage());
        }
    }

    /// The p-persistent policy's geometric sampler has the right mean for any p.
    #[test]
    fn geometric_backoff_mean(p in 0.02f64..0.9) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut pol = PPersistent::new(p);
        let samples = 40_000;
        let total: u64 = (0..samples).map(|_| pol.next_backoff(&mut rng)).sum();
        let mean = total as f64 / samples as f64;
        let expected = (1.0 - p) / p;
        prop_assert!(
            (mean - expected).abs() < 0.1 + 0.1 * expected,
            "p={p} mean={mean} expected={expected}"
        );
    }

    /// Kiefer–Wolfowitz stays inside its bounds and converges on noiseless
    /// quadratics regardless of where the optimum sits.
    #[test]
    fn kiefer_wolfowitz_converges_on_quadratics(target in 0.05f64..0.95, start in 0.05f64..0.95) {
        let mut kw = KieferWolfowitz::with_gains(
            start,
            (0.0, 1.0),
            (0.0, 1.0),
            PowerLawGains::paper_defaults(),
        );
        let est = kw.maximize(|x| -(x - target).powi(2), 600);
        prop_assert!((0.0..=1.0).contains(&est));
        prop_assert!((est - target).abs() < 0.08, "target {target} start {start} est {est}");
    }
}

proptest! {
    // Whole-simulator properties are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation laws of the simulator: successes + failures never exceed
    /// attempts, delivered bytes match per-station success counts, and the
    /// channel is never busy for more than the measured time.
    #[test]
    fn simulator_conservation_laws(
        n in 2usize..12,
        p in 0.005f64..0.2,
        seed in 0u64..500,
        hidden in any::<bool>(),
    ) {
        let topo = if hidden {
            TopologySpec::UniformDisc { radius: 18.0 }
        } else {
            TopologySpec::FullyConnected
        };
        let r = Scenario::new(Protocol::StaticPPersistent { p }, topo, n)
            .durations(SimDuration::ZERO, SimDuration::from_millis(800))
            .seed(seed)
            .run();
        prop_assert!(r.throughput_mbps >= 0.0);
        prop_assert!(r.collision_fraction >= 0.0 && r.collision_fraction <= 1.0);
        prop_assert!(r.jain_index > 0.0 && r.jain_index <= 1.0 + 1e-9);
        let total: f64 = r.per_node_mbps.iter().sum();
        prop_assert!((total - r.throughput_mbps).abs() < 1e-6 * r.throughput_mbps.max(1.0));
        // 54 Mbps link: MAC goodput can never exceed the link rate.
        prop_assert!(r.throughput_mbps < 54.0);
    }

    /// Frame conservation in the traffic layer: for every station, under any
    /// arrival process (CBR / Poisson / bursty on/off, mixed per station via
    /// an override), any queue bound, and arbitrary arrival/drop/delivery
    /// interleavings, `queued_at_start + arrivals == delivered + drops +
    /// queued_at_end` holds exactly — and unbounded queues never drop.
    #[test]
    fn frame_conservation_under_arbitrary_arrivals(
        n in 2usize..8,
        kind in 0u8..3,
        rate in 20.0f64..3000.0,
        cap in 0usize..24, // 0 means unbounded
        seed in 0u64..1000,
    ) {
        let arrival = match kind {
            0 => ArrivalProcess::Cbr { rate_fps: rate },
            1 => ArrivalProcess::Poisson { rate_fps: rate },
            _ => ArrivalProcess::OnOff {
                rate_fps: rate * 4.0,
                mean_on: SimDuration::from_millis(20),
                mean_off: SimDuration::from_millis(60),
            },
        };
        let queue_frames = if cap == 0 { None } else { Some(cap) };
        let mut sim = SimulatorBuilder::new(PhyParams::table1(), Topology::fully_connected(n))
            .seed(seed)
            .with_stations(|_, _| PPersistent::new(0.05))
            .traffic(TrafficSpec { arrival, queue_frames })
            // Pluggable per-station processes: station 0 always deviates.
            .station_arrival(0, ArrivalProcess::Poisson { rate_fps: rate })
            .build();
        sim.run_for(SimDuration::from_millis(400));
        // Exercise a mid-run measurement reset too: `queued_at_start` must
        // re-anchor the invariant on the new interval.
        sim.reset_measurements();
        sim.run_for(SimDuration::from_millis(300));
        let stats = sim.stats();
        for i in 0..n {
            let t = &stats.nodes[i].traffic;
            prop_assert_eq!(
                t.queued_at_start + t.arrivals,
                t.delivered + t.drops + sim.queued_frames(i) as u64,
                "station {}: start {} + arrivals {} vs delivered {} + drops {} + queued {}",
                i, t.queued_at_start, t.arrivals, t.delivered, t.drops, sim.queued_frames(i)
            );
            // Delivered frames are exactly the MAC successes of the interval.
            prop_assert_eq!(t.delivered, stats.nodes[i].successes);
            if queue_frames.is_none() {
                prop_assert_eq!(t.drops, 0);
            } else {
                prop_assert!(sim.queued_frames(i) <= cap);
            }
        }
    }
}
