//! Large-N memory regression suite: everything a long or large run retains
//! must be O(N) in the station count (plus the configured trace/series caps),
//! never O(events) or O(simulated time).
//!
//! The large-N scaling campaign runs cells up to N = 2000 for hundreds of
//! simulated seconds; an O(events) collection anywhere in `SimStats`,
//! `NodeStats` or `ScenarioResult` would dominate memory long before the
//! event engine becomes the bottleneck. The audit outcome is pinned here:
//!
//! * per-station counters (`NodeStats`) are fixed-size;
//! * the transmission slab stays bounded by N + 1 regardless of run length;
//! * the throughput time series is bounded by the configured cap via
//!   stride-doubling decimation (and the `StatsTick` cadence — and therefore
//!   the event stream — is unaffected by the cap);
//! * controller traces (wTOP/TORA) are bounded by their `trace_cap`;
//! * every `ScenarioResult` collection is either exactly N long or cap-bounded.

use wlan_sa::sim::backoff::ExponentialBackoff;
use wlan_sa::sim::{PhyParams, SimulatorBuilder, Topology};
use wlan_sa::{Protocol, Scenario, SimDuration, TopologySpec};

#[test]
fn n1000_engine_state_is_bounded() {
    let n = 1000;
    let topo = Topology::fully_connected(n);
    let mut sim = SimulatorBuilder::new(PhyParams::table1(), topo)
        .seed(3)
        .with_stations(|_, phy| ExponentialBackoff::new(phy))
        .build();
    sim.run_for(SimDuration::from_millis(200));
    let stats = sim.stats();
    assert!(stats.total_attempts() > 300, "want a busy run");
    // The in-flight transmission slab is O(concurrent transmissions) ≤ N + 1,
    // not O(attempts).
    assert!(sim.tx_slab_high_water() <= n + 1);
    assert!(sim.tx_slab_capacity() <= n + 1);
    // Per-station stats are one fixed-size record per station.
    assert_eq!(stats.nodes.len(), n);
}

#[test]
fn throughput_series_is_capped_by_stride_doubling() {
    let cap = 64;
    let topo = Topology::fully_connected(4);
    let mut sim = SimulatorBuilder::new(PhyParams::table1(), topo)
        .seed(5)
        .with_stations(|_, _| ExponentialBackoff::new(&PhyParams::table1()))
        .throughput_bin(SimDuration::from_millis(1))
        .throughput_series_cap(cap)
        .build();
    // 2000 ticks at 1 ms: without the cap the series would hold ~2000 samples.
    sim.run_for(SimDuration::from_secs(2));
    let series = sim.stats().throughput_series;
    assert!(
        series.len() < cap && series.len() >= cap / 4,
        "series length {} should sit just under the cap {cap}",
        series.len()
    );
    // Decimation preserves chronological order and full-run coverage.
    assert!(series.windows(2).all(|w| w[0].time < w[1].time));
    let last = series.last().unwrap().time;
    assert!(last >= wlan_sa::sim::SimTime::from_millis(1900), "{last}");
    // The samples still average to a sane rate (merging is rate-preserving).
    assert!(series.iter().any(|s| s.bps > 1e6));
}

#[test]
fn n1000_scenario_result_is_o_n() {
    let n = 1000;
    // wTOP exercises the controller traces too; a 10 ms update period over
    // 350 ms produces plenty of segments without making the test slow.
    let r = Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, n)
        .seed(2)
        .durations(SimDuration::from_millis(100), SimDuration::from_millis(250))
        .update_period(SimDuration::from_millis(10))
        .run();
    // Exactly-N collections.
    assert_eq!(r.per_node_mbps.len(), n);
    assert_eq!(r.normalized_mbps.len(), n);
    assert_eq!(r.station_attempt_probabilities.len(), n);
    // Cap-bounded collections (defaults are far above what this run records;
    // the point is that they are bounded at all, pinned by the unit tests of
    // the caps themselves).
    assert!(r.control_trace.len() <= 4096);
    assert!(r.throughput_series.len() <= 4096);
}
