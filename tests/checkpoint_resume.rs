//! Checkpoint/resume equivalence: the engine's contract is that
//! `Simulator::checkpoint()` + `Simulator::resume()` splits a run into two
//! processes with **no observable effect** — every metric, series and trace
//! of the resumed run is byte-identical to the straight-through run. This is
//! what makes the campaign server's snapshots trustworthy: a job interrupted
//! and resumed reports exactly what an uninterrupted job would have.
//!
//! The property is exercised across all six protocols, saturated and
//! finite-load traffic, hidden-terminal topologies, and checkpoint instants
//! drawn from the whole run — including inside the warm-up (where the
//! `reset_measurements` call is still pending at resume time) and inside
//! busy periods (a saturated cell keeps the channel almost always busy, so a
//! dense checkpoint chain necessarily snapshots mid-transmission).

use proptest::prelude::*;
use wlan_sa::core::{Protocol, Scenario, ScenarioResult, TopologySpec};
use wlan_sa::sim::{SimDuration, SimTime, TrafficSpec};

fn protocol(idx: usize) -> Protocol {
    match idx % 6 {
        0 => Protocol::Standard80211,
        1 => Protocol::IdleSense,
        2 => Protocol::WTopCsma,
        3 => Protocol::ToraCsma,
        4 => Protocol::StaticPPersistent { p: 0.04 },
        _ => Protocol::StaticRandomReset { stage: 1, p0: 0.6 },
    }
}

fn topology(idx: usize) -> TopologySpec {
    match idx % 3 {
        0 => TopologySpec::FullyConnected,
        1 => TopologySpec::Ring { radius: 8.0 },
        _ => TopologySpec::UniformDisc { radius: 16.0 },
    }
}

fn scenario(proto_idx: usize, topo_idx: usize, n: usize, seed: u64, finite_load: bool) -> Scenario {
    let mut s = Scenario::new(protocol(proto_idx), topology(topo_idx), n)
        .durations(SimDuration::from_millis(30), SimDuration::from_millis(90))
        .update_period(SimDuration::from_millis(15))
        .seed(seed);
    if finite_load {
        s = s.traffic(TrafficSpec::poisson(300.0).with_queue_frames(16));
    }
    s
}

/// Run `scenario` to `checkpoint_at`, snapshot, restore the snapshot into a
/// **fresh** simulator (as a separate process would), and finish the run
/// there.
fn resumed_run(scenario: &Scenario, checkpoint_at: SimTime) -> ScenarioResult {
    let mut first = scenario.build_simulator();
    scenario.advance_until(&mut first, checkpoint_at);
    let snapshot = first.checkpoint();
    drop(first);
    let mut second = scenario.build_simulator();
    second
        .resume(&snapshot)
        .expect("a snapshot the engine just wrote must resume");
    scenario.advance_until(&mut second, scenario.end_time());
    scenario.collect(&second)
}

fn json(result: &ScenarioResult) -> String {
    serde_json::to_string(result).expect("serialise result")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random protocol × topology × traffic × seed × checkpoint instant:
    /// the resumed run must serialise byte-identically to the straight run.
    /// Checkpoint fractions below 25% land inside the warm-up, so the
    /// pending mid-run `reset_measurements` is part of the sampled space.
    #[test]
    fn resume_is_byte_identical_to_straight_through(
        proto_idx in 0usize..6,
        topo_idx in 0usize..3,
        n in 3usize..6,
        seed in 1u64..10_000,
        finite_load in any::<bool>(),
        frac_permille in 10u32..990,
    ) {
        let s = scenario(proto_idx, topo_idx, n, seed, finite_load);
        let end = s.end_time();
        let checkpoint_at = SimTime::ZERO
            + SimDuration::from_secs_f64(end.as_secs_f64() * frac_permille as f64 / 1000.0);
        let straight = json(&s.run());
        let resumed = json(&resumed_run(&s, checkpoint_at));
        prop_assert_eq!(
            straight,
            resumed,
            "resume diverged: protocol {:?}, topology {:?}, n {}, seed {}, finite_load {}, checkpoint at {}‰",
            protocol(proto_idx),
            topology(topo_idx),
            n,
            seed,
            finite_load,
            frac_permille
        );
    }
}

/// Checkpointing inside the warm-up must preserve the *pending*
/// `reset_measurements`: the resumed simulator still has to zero its
/// statistics at the warm-up boundary, or every counter in the result
/// shifts. One deterministic case per protocol.
#[test]
fn checkpoint_during_warmup_preserves_the_pending_measurement_reset() {
    for proto_idx in 0..6 {
        let s = scenario(proto_idx, 0, 5, 11, false);
        let mid_warmup = SimTime::ZERO + SimDuration::from_millis(15);
        assert_eq!(
            json(&s.run()),
            json(&resumed_run(&s, mid_warmup)),
            "{:?}: checkpoint during warm-up broke the measurement reset",
            protocol(proto_idx)
        );
    }
}

/// A dense chain of checkpoint → restore-into-fresh-simulator steps across a
/// saturated run. With a snapshot every 1.3 ms of a cell whose channel is
/// essentially always busy, many snapshots necessarily land inside a busy
/// period (mid-transmission, pending ACK timers, half-elapsed backoffs); the
/// final result must still match the uninterrupted run byte for byte.
#[test]
fn chained_checkpoints_inside_busy_periods_are_byte_identical() {
    let s = scenario(0, 0, 6, 7, false);
    let straight = json(&s.run());
    let end = s.end_time();
    let step = SimDuration::from_micros(1300);
    let mut sim = s.build_simulator();
    let mut snapshots = 0u32;
    while sim.now() < end {
        let next = (sim.now() + step).min(end);
        s.advance_until(&mut sim, next);
        if sim.now() < end {
            let snapshot = sim.checkpoint();
            let mut fresh = s.build_simulator();
            fresh.resume(&snapshot).expect("chain snapshot must resume");
            sim = fresh;
            snapshots += 1;
        }
    }
    assert!(snapshots > 50, "the chain must actually checkpoint densely");
    assert_eq!(
        straight,
        json(&s.collect(&sim)),
        "a chain of {snapshots} checkpoint/restore steps diverged from the straight run"
    );
}
