//! Weighted fairness (the paper's Table II): ten stations with weights
//! {1,1,1,2,2,2,3,3,3,3} run wTOP-CSMA; each station's throughput divided by its
//! weight should be (nearly) identical, and the total should stay near the
//! optimum.
//!
//! ```sh
//! cargo run --release --example weighted_fairness
//! ```

use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn main() {
    let weights = vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0];
    let n = weights.len();

    let result = Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, n)
        .weights(weights.clone())
        .durations(SimDuration::from_secs(60), SimDuration::from_secs(20))
        .seed(3)
        .run();

    println!("Node  Weight  Throughput (Mbps)  Normalized (Mbps/weight)");
    for (i, &weight) in weights.iter().enumerate() {
        println!(
            "{:>4}  {:>6}  {:>17.3}  {:>24.3}",
            i + 1,
            weight,
            result.per_node_mbps[i],
            result.normalized_mbps[i]
        );
    }
    println!(
        "\nTotal throughput          : {:.2} Mbps",
        result.throughput_mbps
    );
    println!(
        "Weighted Jain index       : {:.4} (1.0 = perfectly weighted-fair)",
        result.weighted_jain_index
    );
    println!(
        "Unweighted Jain index     : {:.4} (should be < 1: weights differ)",
        result.jain_index
    );
}
