//! The paper's headline experiment: with hidden terminals, model-based schemes
//! (IdleSense) collapse, while the model-free stochastic-approximation schemes
//! keep working — and the exponential-backoff variant (TORA-CSMA) beats the
//! optimal p-persistent one (wTOP-CSMA).
//!
//! ```sh
//! cargo run --release --example hidden_nodes
//! ```

use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn main() {
    let n = 30;
    let radius = 16.0;
    println!("{n} stations placed uniformly in a disc of radius {radius} m (sensing range 24 m)\n");

    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>12}",
        "Protocol", "Mbps", "hidden pairs", "idle/tx", "collisions"
    );
    for proto in [
        Protocol::Standard80211,
        Protocol::IdleSense,
        Protocol::WTopCsma,
        Protocol::ToraCsma,
    ] {
        let warm = if proto.is_adaptive() { 60 } else { 5 };
        let r = Scenario::new(proto, TopologySpec::UniformDisc { radius }, n)
            .durations(SimDuration::from_secs(warm), SimDuration::from_secs(10))
            .seed(11)
            .run();
        println!(
            "{:<18} {:>12.2} {:>14} {:>12.2} {:>12.2}",
            r.protocol, r.throughput_mbps, r.hidden_pairs, r.avg_idle_slots, r.collision_fraction
        );
    }

    println!(
        "\nExpected ordering (the paper's Figs. 6-7): TORA-CSMA > wTOP-CSMA ≳ 802.11 >> IdleSense."
    );
}
