//! Dynamic membership (the paper's Figs. 8-11): stations join and leave while
//! wTOP-CSMA keeps re-converging its control variable; the throughput stays
//! near the optimum across the changes.
//!
//! ```sh
//! cargo run --release --example dynamic_network
//! ```

use wlan_sa::core::{run_dynamic, MembershipSchedule, Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn main() {
    let total_secs = 200.0;
    let schedule = MembershipSchedule::paper_default(total_secs);
    println!(
        "Membership schedule: start with {} stations, then {:?}",
        schedule.initial_active,
        schedule
            .changes
            .iter()
            .map(|c| (c.at_secs, c.active))
            .collect::<Vec<_>>()
    );

    let mut scenario = Scenario::new(
        Protocol::WTopCsma,
        TopologySpec::FullyConnected,
        schedule.max_active(),
    )
    .durations(SimDuration::ZERO, SimDuration::from_secs(total_secs as u64))
    .seed(5);
    scenario.throughput_bin = SimDuration::from_secs(2);

    let result = run_dynamic(
        &scenario,
        &schedule,
        SimDuration::from_secs(total_secs as u64),
    );

    println!("\n  time(s)  active  throughput(Mbps)");
    for (t, mbps, active) in result.throughput_series.iter().step_by(5) {
        println!("  {:>7.0}  {:>6}  {:>16.2}", t, active, mbps);
    }
    println!(
        "\nwhole-run average: {:.2} Mbps",
        result.mean_throughput_mbps
    );
    if let Some((t, p)) = result.control_trace.last() {
        println!("final control variable p = {p:.4} at t = {t:.0}s");
    }
}
