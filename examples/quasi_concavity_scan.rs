//! Empirical quasi-concavity check (the paper's Figs. 2, 4, 5 and 13): sweep
//! the control variable of a *static* policy — the attempt probability of
//! p-persistent CSMA, or the reset probability p0 of RandomReset — and verify
//! that the measured throughput is single-peaked, which is the regularity
//! condition the Kiefer–Wolfowitz controllers rely on.
//!
//! ```sh
//! cargo run --release --example quasi_concavity_scan
//! ```

use wlan_sa::analytic::quasiconcave;
use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn sweep(label: &str, topology: TopologySpec, n: usize, points: &[(String, Protocol)]) {
    println!("== {label} (n = {n})");
    let mut ys = Vec::new();
    for (name, proto) in points {
        let r = Scenario::new(*proto, topology.clone(), n)
            .durations(SimDuration::from_secs(1), SimDuration::from_secs(3))
            .seed(21)
            .run();
        println!("  {:<12} -> {:>6.2} Mbps", name, r.throughput_mbps);
        ys.push(r.throughput_mbps);
    }
    let ok = quasiconcave::is_quasi_concave(&ys, 1.0);
    println!(
        "  quasi-concave within 1 Mbps noise tolerance: {} (defect {:.3})\n",
        ok,
        quasiconcave::unimodality_defect(&ys)
    );
}

fn main() {
    // Throughput of p-persistent CSMA vs attempt probability, fully connected (Fig. 2).
    let ps = [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];
    let points: Vec<(String, Protocol)> = ps
        .iter()
        .map(|&p| (format!("p={p}"), Protocol::StaticPPersistent { p }))
        .collect();
    sweep(
        "p-persistent, fully connected",
        TopologySpec::FullyConnected,
        20,
        &points,
    );

    // The same sweep with hidden nodes (Fig. 4).
    sweep(
        "p-persistent, hidden nodes (disc 16 m)",
        TopologySpec::UniformDisc { radius: 16.0 },
        20,
        &points,
    );

    // RandomReset throughput vs p0 for j = 0 (Figs. 5 and 13).
    let p0s = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let points: Vec<(String, Protocol)> = p0s
        .iter()
        .map(|&p0| {
            (
                format!("p0={p0}"),
                Protocol::StaticRandomReset { stage: 0, p0 },
            )
        })
        .collect();
    sweep(
        "RandomReset(0; p0), fully connected",
        TopologySpec::FullyConnected,
        20,
        &points,
    );
    sweep(
        "RandomReset(0; p0), hidden nodes (disc 16 m)",
        TopologySpec::UniformDisc { radius: 16.0 },
        20,
        &points,
    );
}
