//! Finite load: run a Poisson-loaded cell below and above the saturation
//! knee and read off the delay percentiles the traffic layer records.
//!
//! The paper's evaluation is all saturated stations; this example shows the
//! other axis the controllers face in deployment — offered load. Below the
//! knee every scheme carries the offered load and the interesting metric is
//! *delay*; above it the queues fill, delay is dominated by queueing, and
//! throughput flattens at the scheme's saturation point.
//!
//! ```sh
//! cargo run --release --example finite_load
//! ```

use wlan_sa::analytic;
use wlan_sa::core::{Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;
use wlan_sa::{ArrivalProcess, PhyParams, TrafficSpec};

fn main() {
    let n = 20;
    let payload_bits = PhyParams::table1().payload_bits as f64;

    // The analytic capacity of the cell: what the best p-persistent scheme
    // can carry once every station is backlogged.
    let model = analytic::SlotModel::table1();
    let capacity_bps = analytic::optimal_throughput(&model, &vec![1.0; n]);
    println!(
        "Analytic capacity for {n} stations: S* = {:.2} Mbps\n",
        capacity_bps / 1e6
    );

    println!("802.11 DCF under Poisson load, 100-frame queues:");
    println!("  load    offered   carried   mean     p50      p95      p99      drops");
    for load in [0.3, 0.6, 0.9, 1.2] {
        // Per-station arrival rate for this fraction of capacity.
        let rate_fps = load * capacity_bps / payload_bits / n as f64;
        let r = Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, n)
            .durations(SimDuration::from_secs(2), SimDuration::from_secs(8))
            .seed(1)
            .traffic(TrafficSpec {
                arrival: ArrivalProcess::Poisson { rate_fps },
                queue_frames: Some(100),
            })
            .run();
        let t = r.traffic.expect("finite-load runs report traffic metrics");
        println!(
            "  {load:.1}xS* {:>6.2} Mb {:>6.2} Mb {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>5.1}%",
            t.offered_mbps,
            r.throughput_mbps,
            t.mean_delay_ms,
            t.p50_delay_ms,
            t.p95_delay_ms,
            t.p99_delay_ms,
            100.0 * t.drop_fraction
        );
    }

    // Bursty sources at the same mean rate stress the queues much harder
    // than smooth ones: compare the p99 delay of CBR against an on/off
    // source with a 25% duty cycle at 0.6 x S*.
    println!("\nSame mean load (0.6xS*), different burstiness:");
    let mean_rate = 0.6 * capacity_bps / payload_bits / n as f64;
    for (label, arrival) in [
        (
            "CBR",
            ArrivalProcess::Cbr {
                rate_fps: mean_rate,
            },
        ),
        (
            "on/off (25% duty)",
            ArrivalProcess::OnOff {
                rate_fps: mean_rate * 4.0,
                mean_on: SimDuration::from_millis(50),
                mean_off: SimDuration::from_millis(150),
            },
        ),
    ] {
        let r = Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, n)
            .durations(SimDuration::from_secs(2), SimDuration::from_secs(8))
            .seed(1)
            .traffic(TrafficSpec {
                arrival,
                queue_frames: Some(100),
            })
            .run();
        let t = r.traffic.expect("finite-load runs report traffic metrics");
        println!(
            "  {label:<18} mean delay {:>7.2} ms, p99 {:>8.2} ms, jitter {:>6.2} ms, \
             queue high-water {}",
            t.mean_delay_ms, t.p99_delay_ms, t.mean_jitter_ms, t.max_queue_high_water
        );
    }

    println!(
        "\nThe saturation knee sits near 1.0xS* for a well-tuned scheme; \
         run `fig_finite_load` for all six protocols."
    );
}
