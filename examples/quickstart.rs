//! Quickstart: run wTOP-CSMA on a fully connected WLAN and compare the
//! converged throughput with standard IEEE 802.11 and with the analytical
//! optimum.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wlan_sa::analytic;
use wlan_sa::core::{mean_throughput, run_seeds, Protocol, Scenario, TopologySpec};
use wlan_sa::sim::SimDuration;

fn main() {
    let n = 20;

    // What the closed-form model says the best any p-persistent scheme can do.
    let model = analytic::SlotModel::table1();
    let weights = vec![1.0; n];
    let p_star = analytic::optimal_p(&model, &weights);
    let s_star = analytic::optimal_throughput(&model, &weights) / 1e6;
    println!("Analytic optimum for {n} stations: p* = {p_star:.4}, S* = {s_star:.2} Mbps");

    // Standard IEEE 802.11 DCF.
    let dcf = Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, n)
        .durations(SimDuration::from_secs(3), SimDuration::from_secs(5))
        .seed(1)
        .run();
    println!(
        "Standard 802.11     : {:.2} Mbps (collision fraction {:.2})",
        dcf.throughput_mbps, dcf.collision_fraction
    );

    // wTOP-CSMA: the AP tunes the attempt probability from throughput
    // measurements only, with no knowledge of N.
    // Averaged over three seeds on the deterministic parallel campaign pool
    // (thread count from WLAN_THREADS, default: all cores; the results are
    // bit-identical for any value).
    let base = Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, n)
        .durations(SimDuration::from_secs(60), SimDuration::from_secs(10));
    let results = run_seeds(&base, &[1, 2, 3]);
    let wtop = &results[0];
    let mean = mean_throughput(&results);
    let p_end = wtop.control_trace.last().map(|x| x.1).unwrap_or(f64::NAN);
    println!(
        "wTOP-CSMA           : {mean:.2} Mbps over {} seeds (seed 1 converged to p = {p_end:.4})",
        results.len()
    );

    println!(
        "\nwTOP-CSMA reaches {:.0}% of the analytic optimum without knowing N or the PHY model.",
        100.0 * mean / s_star
    );
}
