//! # wlan-sa
//!
//! Facade crate for the reproduction of *"Stochastic Approximation Algorithm for
//! Optimal Throughput Performance of Wireless LANs"* (Krishnan & Chaporkar, 2010).
//!
//! The workspace is organised as four libraries plus an experiment harness:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] (`wlan-sim`) | discrete-event IEEE 802.11 DCF MAC simulator with hidden-terminal support |
//! | [`analytic`] (`wlan-analytic`) | Bianchi / p-persistent / RandomReset closed-form models |
//! | [`sa`] (`stochastic-approx`) | Kiefer–Wolfowitz, Robbins–Monro and SPSA optimisers |
//! | [`core`] (`wlan-core`) | wTOP-CSMA, TORA-CSMA, IdleSense, the scenario runner |
//! | `wlan-bench` | one binary per paper figure/table plus criterion benches |
//!
//! The most convenient entry point is the scenario runner:
//!
//! ```
//! use wlan_sa::core::{Protocol, Scenario, TopologySpec};
//! use wlan_sa::sim::SimDuration;
//!
//! let result = Scenario::new(Protocol::ToraCsma, TopologySpec::UniformDisc { radius: 16.0 }, 10)
//!     .durations(SimDuration::from_secs(2), SimDuration::from_secs(1))
//!     .seed(7)
//!     .run();
//! println!("{} achieved {:.1} Mbps with {} hidden pairs",
//!          result.protocol, result.throughput_mbps, result.hidden_pairs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stochastic_approx as sa;
pub use wlan_analytic as analytic;
pub use wlan_core as core;
pub use wlan_sim as sim;

pub use wlan_core::{Protocol, Scenario, ScenarioResult, TopologySpec};
pub use wlan_sim::{PhyParams, SimDuration, SimTime, Topology};
