//! # wlan-sa
//!
//! Facade crate for the reproduction of *"Stochastic Approximation Algorithm for
//! Optimal Throughput Performance of Wireless LANs"* (Krishnan & Chaporkar, 2010).
//!
//! The workspace is organised as four libraries plus an experiment harness
//! (see `docs/ARCHITECTURE.md` for the full map and dataflow):
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] (`wlan-sim`) | discrete-event IEEE 802.11 DCF MAC simulator with hidden-terminal support |
//! | [`analytic`] (`wlan-analytic`) | Bianchi / p-persistent / RandomReset closed-form models |
//! | [`sa`] (`stochastic-approx`) | Kiefer–Wolfowitz, Robbins–Monro and SPSA optimisers |
//! | [`core`] (`wlan-core`) | wTOP-CSMA, TORA-CSMA, IdleSense, the scenario + campaign runners |
//! | `wlan-bench` | one binary per paper figure/table plus criterion benches |
//!
//! ## Quickstart
//!
//! This is the doc-tested version of `examples/quickstart.rs` (which runs the
//! same comparison at full length — `cargo run --release --example
//! quickstart`): compare standard 802.11 with wTOP-CSMA, which tunes itself
//! toward the analytic optimum from throughput measurements alone.
//!
//! ```
//! use wlan_sa::analytic;
//! use wlan_sa::core::{run_seeds_parallel, Protocol, Scenario, TopologySpec};
//! use wlan_sa::sim::SimDuration;
//!
//! let n = 10;
//!
//! // What the closed-form model says the best any p-persistent scheme can do.
//! let model = analytic::SlotModel::table1();
//! let weights = vec![1.0; n];
//! let s_star = analytic::optimal_throughput(&model, &weights) / 1e6;
//!
//! // Standard IEEE 802.11 DCF (durations shortened for the doctest).
//! let dcf = Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, n)
//!     .durations(SimDuration::from_millis(300), SimDuration::from_millis(500))
//!     .seed(1)
//!     .run();
//! assert!(dcf.throughput_mbps > 0.0 && dcf.throughput_mbps < s_star);
//!
//! // wTOP-CSMA: the AP tunes the attempt probability from throughput
//! // measurements only, with no knowledge of N — here averaged over two
//! // seeds on the deterministic parallel campaign pool.
//! let wtop = Scenario::new(Protocol::WTopCsma, TopologySpec::FullyConnected, n)
//!     .durations(SimDuration::from_millis(500), SimDuration::from_millis(500))
//!     .update_period(SimDuration::from_millis(50))
//!     .seed(1);
//! let results = run_seeds_parallel(&wtop, &[1, 2], 2);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.throughput_mbps > 0.0));
//! assert!(!results[0].control_trace.is_empty(), "the AP records its control variable");
//! ```
//!
//! Grid experiments (protocol × topology × N × seed) go through
//! [`core::Campaign`], which executes on a thread pool and is bit-identical
//! for every thread count.
//!
//! ## Finite load
//!
//! Beyond the paper's saturated model, the traffic layer opens the
//! offered-load dimension: per-station arrival processes
//! ([`ArrivalProcess`]: CBR, Poisson, bursty on/off) feed bounded FIFO
//! queues, and results gain delay percentiles, jitter and drop metrics
//! ([`TrafficSummary`]). `examples/finite_load.rs` (`cargo run --release
//! --example finite_load`) walks a Poisson-loaded cell across the
//! saturation knee and prints its delay percentiles; the `fig_finite_load`
//! binary sweeps all six protocols over offered load.
//!
//! ```
//! use wlan_sa::{Protocol, Scenario, SimDuration, TopologySpec, TrafficSpec};
//!
//! let r = Scenario::new(Protocol::Standard80211, TopologySpec::FullyConnected, 5)
//!     .durations(SimDuration::from_millis(200), SimDuration::from_millis(500))
//!     .traffic(TrafficSpec::poisson(100.0).with_queue_frames(64))
//!     .run();
//! let t = r.traffic.expect("finite-load runs report delay metrics");
//! assert!(t.total_arrivals > 0 && t.mean_delay_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use stochastic_approx as sa;
pub use wlan_analytic as analytic;
pub use wlan_core as core;
pub use wlan_sim as sim;

pub use wlan_core::{
    Campaign, CampaignOutcome, CampaignReport, Protocol, Scenario, ScenarioResult, TopologySpec,
    TrafficSummary,
};
pub use wlan_sim::{ArrivalProcess, PhyParams, SimDuration, SimTime, Topology, TrafficSpec};
